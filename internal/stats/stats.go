// Package stats provides the small measurement and reporting helpers the
// experiment harness uses: labelled series, summary statistics, and
// aligned-text table rendering for the figure/table reproductions.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is a labelled (x, y) sequence, one line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// MeanY returns the mean of Y (0 for an empty series).
func (s *Series) MeanY() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	return Mean(s.Y)
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// Stddev returns the population standard deviation.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) by nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// SpearmanRank returns the Spearman rank-correlation coefficient between
// two equal-length samples — the metric we use to validate the
// meta-network's ranking quality (what matters for choosing partitions
// is ordering candidates correctly, not absolute accuracy).
func SpearmanRank(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra, rb := ranks(a), ranks(b)
	return pearson(ra, rb)
}

func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return xs[idx[i]] < xs[idx[j]] })
	out := make([]float64, len(xs))
	// Tied values share the average of the ranks they span.
	for lo := 0; lo < len(idx); {
		hi := lo
		for hi+1 < len(idx) && xs[idx[hi+1]] == xs[idx[lo]] {
			hi++
		}
		avg := float64(lo+hi) / 2
		for k := lo; k <= hi; k++ {
			out[idx[k]] = avg
		}
		lo = hi + 1
	}
	return out
}

func pearson(a, b []float64) float64 {
	ma, mb := Mean(a), Mean(b)
	var num, da, db float64
	for i := range a {
		num += (a[i] - ma) * (b[i] - mb)
		da += (a[i] - ma) * (a[i] - ma)
		db += (b[i] - mb) * (b[i] - mb)
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

// Table accumulates rows and renders aligned text (with a Markdown
// variant for EXPERIMENTS.md).
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; cells beyond the header count are dropped.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddF appends a row of formatted values: strings pass through, float64
// render with Fmt, ints with %d.
func (t *Table) AddF(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, Fmt(v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.Add(row...)
}

// String renders the table as aligned monospace text.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	var sep []string
	for _, w := range widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured Markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Headers, " | "))
	var sep []string
	for range t.Headers {
		sep = append(sep, "---")
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(r, " | "))
	}
	return b.String()
}

// Fmt renders a float compactly: 3 significant-ish digits, fixed point.
func Fmt(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av >= 0.01:
		return fmt.Sprintf("%.3f", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// Speedup formats a ratio like "1.42x".
func Speedup(new, old float64) string {
	if old == 0 {
		return "∞"
	}
	return fmt.Sprintf("%.2fx", new/old)
}

// CSV renders the table as RFC-4180-ish CSV (fields quoted when they
// contain commas or quotes) for external plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
