package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if math.Abs(Stddev(xs)-2) > 1e-12 {
		t.Fatalf("Stddev = %v", Stddev(xs))
	}
	if Mean(nil) != 0 || Stddev([]float64{1}) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("extremes wrong")
	}
	if Percentile(xs, 50) != 3 {
		t.Fatalf("p50 = %v", Percentile(xs, 50))
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated input")
	}
}

func TestSpearman(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	up := []float64{10, 20, 30, 40, 50}
	down := []float64{5, 4, 3, 2, 1}
	if r := SpearmanRank(a, up); math.Abs(r-1) > 1e-12 {
		t.Fatalf("monotone rank corr = %v", r)
	}
	if r := SpearmanRank(a, down); math.Abs(r+1) > 1e-12 {
		t.Fatalf("reversed rank corr = %v", r)
	}
	if SpearmanRank(a, a[:3]) != 0 {
		t.Fatal("mismatched lengths should give 0")
	}
	if SpearmanRank([]float64{1, 1}, []float64{2, 2}) != 0 {
		t.Fatal("constant series should give 0")
	}
}

// Property: Spearman is invariant to strictly monotone transforms.
func TestQuickSpearmanMonotoneInvariant(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 3 {
			return true
		}
		var a []float64
		seen := map[float64]bool{}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || seen[x] {
				continue
			}
			seen[x] = true
			a = append(a, math.Mod(x, 1e6))
		}
		if len(a) < 3 {
			return true
		}
		b := make([]float64, len(a))
		for i, x := range a {
			b[i] = math.Atan(x) // strictly increasing
		}
		base := SpearmanRank(a, a)
		trans := SpearmanRank(a, b)
		return math.Abs(base-1) < 1e-9 && math.Abs(trans-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 20)
	if s.MeanY() != 15 {
		t.Fatalf("MeanY = %v", s.MeanY())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure X", "model", "speed")
	tb.AddF("VGG16", 12.345)
	tb.AddF("ResNet50", 99999.0)
	txt := tb.String()
	if !strings.Contains(txt, "Figure X") || !strings.Contains(txt, "VGG16") {
		t.Fatalf("text render missing content:\n%s", txt)
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| model | speed |") || !strings.Contains(md, "| --- | --- |") {
		t.Fatalf("markdown render malformed:\n%s", md)
	}
}

func TestTableAddDropsExtraCells(t *testing.T) {
	tb := NewTable("", "a")
	tb.Add("x", "overflow")
	if len(tb.Rows[0]) != 1 {
		t.Fatal("extra cell kept")
	}
}

func TestFmt(t *testing.T) {
	cases := map[float64]string{
		12345: "12345",
		42.42: "42.4",
		1.234: "1.234",
		0:     "0",
	}
	for in, want := range cases {
		if got := Fmt(in); got != want {
			t.Fatalf("Fmt(%v) = %q, want %q", in, got, want)
		}
	}
	if !strings.Contains(Fmt(1e-5), "e") {
		t.Fatal("tiny values should use scientific notation")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(3, 2) != "1.50x" {
		t.Fatalf("Speedup = %s", Speedup(3, 2))
	}
	if Speedup(1, 0) != "∞" {
		t.Fatal("division by zero not handled")
	}
}

func TestPlotSeriesBasics(t *testing.T) {
	s1 := Series{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}}
	s2 := Series{Name: "down", X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}}
	out := PlotSeries("test plot", []Series{s1, s2}, 40, 8)
	if !strings.Contains(out, "test plot") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "+ down") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("missing glyphs")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 8 grid rows + x-axis + legend
	if len(lines) != 11 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	// The increasing series' glyph must appear in the top row (max) and
	// the bottom grid row (min).
	if !strings.ContainsRune(lines[1], '*') || !strings.ContainsRune(lines[8], '*') {
		t.Fatalf("series not spanning full Y range:\n%s", out)
	}
}

func TestPlotSeriesDegenerate(t *testing.T) {
	if out := PlotSeries("", nil, 10, 3); !strings.Contains(out, "no data") {
		t.Fatal("empty plot not flagged")
	}
	flat := Series{Name: "flat", X: []float64{1, 2}, Y: []float64{5, 5}}
	out := PlotSeries("", []Series{flat}, 20, 5)
	if !strings.Contains(out, "*") {
		t.Fatal("flat series not plotted")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.Add("plain", `quo"te`)
	tb.Add("with,comma", "2")
	csv := tb.CSV()
	want := "a,b\nplain,\"quo\"\"te\"\n\"with,comma\",2\n"
	if csv != want {
		t.Fatalf("CSV:\n%q\nwant:\n%q", csv, want)
	}
}
