// Package convergence models top-1 accuracy as a function of training
// progress and synchronisation paradigm, reproducing the shape of the
// paper's Figure 11 (accuracy vs. time for AutoPipe, PipeDream, BSP and
// TAP).
//
// Substitution note (DESIGN.md): the paper measures accuracy on real
// ImageNet-format training. Accuracy-versus-*time* is the product of two
// curves: throughput (which our simulator measures) and
// accuracy-versus-*samples* (a property of the optimiser and staleness
// regime). We model the latter with a saturating-exponential learning
// curve plus a staleness penalty: weight-stashed asynchrony (PipeDream,
// AutoPipe) converges to the BSP accuracy — the paper confirms identical
// top-1 — while totally-asynchronous training (TAP) loses a constant
// factor (the paper reports 1.42×/1.35× lower final accuracy on
// ResNet50/VGG16).
package convergence

import (
	"fmt"
	"math"

	"autopipe/internal/stats"
)

// AccuracyModel captures a workload's accuracy-versus-epochs curve.
type AccuracyModel struct {
	// AMax is the asymptotic top-1 accuracy under consistent updates.
	AMax float64
	// Tau is the learning-curve time constant in epochs.
	Tau float64
	// DatasetSize is samples per epoch.
	DatasetSize float64
}

// ModelFor returns published-shaped accuracy parameters for the paper's
// workloads (ImageNet-1k classification).
func ModelFor(name string) (AccuracyModel, error) {
	switch name {
	case "ResNet50":
		return AccuracyModel{AMax: 0.76, Tau: 18, DatasetSize: 1.28e6}, nil
	case "VGG16":
		return AccuracyModel{AMax: 0.71, Tau: 22, DatasetSize: 1.28e6}, nil
	case "AlexNet":
		return AccuracyModel{AMax: 0.57, Tau: 14, DatasetSize: 1.28e6}, nil
	case "BERT48":
		// Masked-LM accuracy proxy.
		return AccuracyModel{AMax: 0.68, Tau: 6, DatasetSize: 4e6}, nil
	}
	return AccuracyModel{}, fmt.Errorf("convergence: unknown model %q", name)
}

// Paradigm is a synchronisation regime with its staleness behaviour.
type Paradigm struct {
	Name string
	// AccuracyPenalty multiplies the asymptotic accuracy (1 = none).
	AccuracyPenalty float64
	// ProgressPenalty divides effective sample efficiency: stale
	// gradients also slow convergence per sample.
	ProgressPenalty float64
}

// The four regimes of Figure 11.
var (
	// AutoPipeParadigm: asynchronous pipeline with weight stashing —
	// consistent within a mini-batch, no accuracy loss.
	AutoPipeParadigm = Paradigm{Name: "AutoPipe", AccuracyPenalty: 1, ProgressPenalty: 1}
	// PipeDreamParadigm: same weight-stashing semantics.
	PipeDreamParadigm = Paradigm{Name: "PipeDream", AccuracyPenalty: 1, ProgressPenalty: 1}
	// BSPParadigm: bulk-synchronous — consistent by construction.
	BSPParadigm = Paradigm{Name: "BSP", AccuracyPenalty: 1, ProgressPenalty: 1}
	// TAPParadigm: total asynchrony — stale and inconsistent weights
	// cap accuracy (the paper measures ≈1.4× lower top-1) and slow
	// per-sample progress.
	TAPParadigm = Paradigm{Name: "TAP", AccuracyPenalty: 0.71, ProgressPenalty: 0.8}
)

// Accuracy returns top-1 accuracy after seeing the given sample count.
func (am AccuracyModel) Accuracy(samples float64, p Paradigm) float64 {
	if samples <= 0 {
		return 0
	}
	epochs := samples / am.DatasetSize * p.ProgressPenalty
	return am.AMax * p.AccuracyPenalty * (1 - math.Exp(-epochs/am.Tau))
}

// TimeToAccuracy returns the hours needed to reach the target accuracy
// at the given throughput (samples/sec), or +Inf if unreachable.
func (am AccuracyModel) TimeToAccuracy(target, throughput float64, p Paradigm) float64 {
	ceiling := am.AMax * p.AccuracyPenalty
	if target >= ceiling || throughput <= 0 {
		return math.Inf(1)
	}
	// Invert: target = ceiling·(1−exp(−E/τ)).
	epochs := -am.Tau * math.Log(1-target/ceiling)
	samples := epochs * am.DatasetSize / p.ProgressPenalty
	return samples / throughput / 3600
}

// Curve samples accuracy at `points` instants across durationHours for a
// paradigm running at the measured throughput.
func Curve(am AccuracyModel, throughput float64, p Paradigm, durationHours float64, points int) stats.Series {
	s := stats.Series{Name: p.Name}
	if points < 2 {
		points = 2
	}
	for i := 0; i < points; i++ {
		t := durationHours * float64(i) / float64(points-1)
		s.Add(t, am.Accuracy(throughput*t*3600, p))
	}
	return s
}
