package convergence

import (
	"math"
	"testing"
	"testing/quick"
)

func TestModelFor(t *testing.T) {
	for _, name := range []string{"ResNet50", "VGG16", "AlexNet", "BERT48"} {
		am, err := ModelFor(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if am.AMax <= 0 || am.AMax > 1 || am.Tau <= 0 || am.DatasetSize <= 0 {
			t.Fatalf("%s: bad params %+v", name, am)
		}
	}
	if _, err := ModelFor("LeNet"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestAccuracyMonotoneAndBounded(t *testing.T) {
	am, _ := ModelFor("ResNet50")
	prev := -1.0
	for s := 0.0; s < 1e8; s += 5e6 {
		a := am.Accuracy(s, BSPParadigm)
		if a < prev {
			t.Fatalf("accuracy decreased at %v samples", s)
		}
		if a < 0 || a > am.AMax {
			t.Fatalf("accuracy %v out of [0, %v]", a, am.AMax)
		}
		prev = a
	}
}

func TestTAPCapsBelowBSP(t *testing.T) {
	am, _ := ModelFor("ResNet50")
	many := 1e9
	bsp := am.Accuracy(many, BSPParadigm)
	tap := am.Accuracy(many, TAPParadigm)
	if tap >= bsp {
		t.Fatalf("TAP accuracy %v not below BSP %v", tap, bsp)
	}
	// Paper's ratio: ≈1.42× on ResNet50.
	if r := bsp / tap; r < 1.3 || r > 1.6 {
		t.Fatalf("BSP/TAP final ratio %v, want ≈1.42", r)
	}
}

func TestStashingParadigmsMatchBSP(t *testing.T) {
	am, _ := ModelFor("VGG16")
	many := 1e9
	if am.Accuracy(many, AutoPipeParadigm) != am.Accuracy(many, BSPParadigm) {
		t.Fatal("AutoPipe final accuracy must equal BSP (weight stashing)")
	}
	if am.Accuracy(many, PipeDreamParadigm) != am.Accuracy(many, BSPParadigm) {
		t.Fatal("PipeDream final accuracy must equal BSP")
	}
}

func TestTimeToAccuracyInvertsAccuracy(t *testing.T) {
	am, _ := ModelFor("ResNet50")
	tp := 500.0 // img/sec
	hours := am.TimeToAccuracy(0.7, tp, AutoPipeParadigm)
	if math.IsInf(hours, 1) {
		t.Fatal("0.7 unreachable at AMax 0.76")
	}
	got := am.Accuracy(tp*hours*3600, AutoPipeParadigm)
	if math.Abs(got-0.7) > 1e-9 {
		t.Fatalf("round trip accuracy %v, want 0.7", got)
	}
	if !math.IsInf(am.TimeToAccuracy(0.99, tp, AutoPipeParadigm), 1) {
		t.Fatal("unreachable target must be +Inf")
	}
	if !math.IsInf(am.TimeToAccuracy(0.5, 0, AutoPipeParadigm), 1) {
		t.Fatal("zero throughput must be +Inf")
	}
}

func TestFasterThroughputConvergesSooner(t *testing.T) {
	am, _ := ModelFor("ResNet50")
	slow := am.TimeToAccuracy(0.7, 300, AutoPipeParadigm)
	fast := am.TimeToAccuracy(0.7, 600, AutoPipeParadigm)
	if fast >= slow {
		t.Fatalf("faster throughput converges later: %v vs %v", fast, slow)
	}
	if math.Abs(slow/fast-2) > 1e-9 {
		t.Fatal("time-to-accuracy must scale inversely with throughput")
	}
}

func TestCurveShape(t *testing.T) {
	am, _ := ModelFor("VGG16")
	c := Curve(am, 400, AutoPipeParadigm, 30, 16)
	if len(c.X) != 16 || c.X[0] != 0 || c.X[15] != 30 {
		t.Fatalf("curve X: %v", c.X)
	}
	if c.Y[0] != 0 {
		t.Fatal("accuracy at t=0 must be 0")
	}
	for i := 1; i < len(c.Y); i++ {
		if c.Y[i] < c.Y[i-1] {
			t.Fatal("curve not monotone")
		}
	}
}

// Property: accuracy is monotone in samples for any paradigm.
func TestQuickAccuracyMonotone(t *testing.T) {
	am, _ := ModelFor("AlexNet")
	f := func(a, b uint32) bool {
		sa, sb := float64(a), float64(b)
		if sa > sb {
			sa, sb = sb, sa
		}
		for _, p := range []Paradigm{BSPParadigm, TAPParadigm, AutoPipeParadigm} {
			if am.Accuracy(sa, p) > am.Accuracy(sb, p)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
