// Package netsim is a flow-level network simulator on top of the
// discrete-event kernel. Flows between cluster workers share link
// capacity max-min fairly (progressive filling), recomputed whenever a
// flow starts, a flow finishes, or link capacities change.
//
// It replaces the paper's physical Mellanox fabric: PipeDream's planner
// assumes a hierarchical topology with uniform per-level bandwidth and
// all-reduce collectives, and the paper's point is that reality —
// heterogeneous, fluctuating, possibly parameter-server-based — diverges
// from that model. This package provides the reality; the planner keeps
// its simplifying assumptions.
package netsim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"autopipe/internal/cluster"
	"autopipe/internal/sim"
)

// Flow is one in-flight transfer.
type Flow struct {
	ID       uint64
	Name     string
	Src, Dst int
	// Weight is the flow's share weight in the weighted max-min
	// allocation (1 by default). Communication scheduling à la
	// ByteScheduler gives latency-sensitive pipeline transfers more
	// weight than bulk gradient syncs.
	Weight float64
	// remaining and original bits
	remaining float64
	origBits  float64
	rate      float64 // bits/sec, assigned by the fair-share computation
	links     []linkID
	done      func()
	started   sim.Time
	// requested is when the caller asked for the transfer — before any
	// propagation or queueing delay. Completion records measure from
	// here: that is the latency the job's transport layer experiences.
	requested sim.Time
	// background marks cross-traffic flows (see CrossTraffic); consumers
	// estimating the job's own bandwidth must ignore them.
	background bool
	// stalled flows hold their state but receive no bandwidth and never
	// finish (fault injection); CancelFlow removes them like any other.
	stalled bool
}

// Stalled reports whether the flow has been fault-stalled.
func (f *Flow) Stalled() bool { return f.stalled }

// Remaining returns the flow's remaining bits (for tests/inspection).
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate returns the flow's current bits/sec share.
func (f *Flow) Rate() float64 { return f.rate }

type linkKind uint8

const (
	linkUp linkKind = iota
	linkDown
	linkIntra
	linkRackUp
	linkRackDown
)

type linkID struct {
	kind linkKind
	// server for NIC/intra links, rack for rack-uplink links.
	server int
}

func (l linkID) String() string {
	switch l.kind {
	case linkUp:
		return fmt.Sprintf("up:%d", l.server)
	case linkDown:
		return fmt.Sprintf("down:%d", l.server)
	case linkRackUp:
		return fmt.Sprintf("rackup:%d", l.server)
	case linkRackDown:
		return fmt.Sprintf("rackdown:%d", l.server)
	default:
		return fmt.Sprintf("intra:%d", l.server)
	}
}

// Network simulates all flows of the measured job over the cluster.
type Network struct {
	eng *sim.Engine
	cl  *cluster.Cluster

	flows      map[uint64]*Flow
	nextID     uint64
	lastUpdate sim.Time
	completion *sim.Event

	// TotalBitsDelivered accumulates finished-flow volume (telemetry).
	TotalBitsDelivered float64

	// PerHopLatencySec adds a fixed propagation/processing delay per
	// link hop before a flow's data starts moving (0 = pure fluid
	// model, the default). Chatty protocols — e.g. ring all-reduce's
	// 2(N−1) barriered steps — pay it on every step.
	PerHopLatencySec float64

	// fault, when set, is consulted once per injected flow (see
	// SetFaultInjector).
	fault func(src, dst int, name string) FlowFault

	// queue, when non-nil, enables the per-link queueing model (see
	// EnableQueueing in congestion.go): contended links accumulate
	// bounded drain-queue delay that newly injected flows wait out
	// before their data starts moving.
	queue *queueModel

	// observers receive a FlowRecord for every completed transfer (see
	// AddFlowObserver in congestion.go).
	observers []func(FlowRecord)
}

// FlowFault is a fault injector's verdict on a starting flow.
type FlowFault uint8

// Flow fault verdicts.
const (
	// FaultNone lets the flow proceed normally.
	FaultNone FlowFault = iota
	// FaultStall registers the flow but pins its rate to zero: it holds
	// its links' bookkeeping slot and never finishes unless cancelled —
	// the lost-transport failure mode a switch watchdog must detect.
	FaultStall
	// FaultDrop silently discards the flow: it is never registered and
	// its completion callback never fires — a transfer into a dead host.
	FaultDrop
)

// SetFaultInjector installs fn, consulted once per flow at injection
// time (nil disables). Local (same-worker or zero-byte) transfers bypass
// the fair-share allocator entirely and therefore also bypass fault
// injection.
func (n *Network) SetFaultInjector(fn func(src, dst int, name string) FlowFault) {
	n.fault = fn
}

// StallMatching fault-stalls every in-flight flow whose name contains
// substr and returns how many it hit. Stalled flows keep their remaining
// volume but receive no bandwidth until cancelled.
func (n *Network) StallMatching(substr string) int {
	n.advance()
	hit := 0
	for _, f := range n.flows {
		if !f.stalled && strings.Contains(f.Name, substr) {
			f.stalled = true
			hit++
		}
	}
	n.reschedule()
	return hit
}

// EstimateSeconds returns the contention-free transfer time of bytes
// from src to dst at current link capacities — the deadline basis for
// migration watchdogs, not a throughput prediction. A fully throttled
// route falls back to 1 Gbps so deadlines stay finite.
func (n *Network) EstimateSeconds(src, dst int, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	if src == dst {
		return float64(bytes*8) / (n.cl.IntraServerBwBps * 4)
	}
	min := math.Inf(1)
	for _, l := range n.route(src, dst) {
		if c := n.capacity(l); c < min {
			min = c
		}
	}
	if min <= 0 || math.IsInf(min, 1) {
		min = 1e9
	}
	return float64(bytes*8) / min
}

// New creates a network bound to an engine and a cluster.
func New(eng *sim.Engine, cl *cluster.Cluster) *Network {
	return &Network{eng: eng, cl: cl, flows: make(map[uint64]*Flow)}
}

// capacity returns the current capacity of a link in bits/sec.
func (n *Network) capacity(l linkID) float64 {
	switch l.kind {
	case linkIntra:
		return n.cl.IntraServerBwBps
	case linkRackUp, linkRackDown:
		return n.cl.RackUplinkBps
	default:
		return n.cl.Servers[l.server].AvailBwBps()
	}
}

// route returns the links a src→dst flow traverses: the intra-server
// path, or source uplink + destination downlink, plus — in the two-tier
// topology — the rack core uplinks when the endpoints sit under
// different leaf switches.
func (n *Network) route(src, dst int) []linkID {
	if src == dst {
		return nil
	}
	sa, sb := n.cl.GPUs[src].Server, n.cl.GPUs[dst].Server
	if sa == sb {
		return []linkID{{kind: linkIntra, server: sa}}
	}
	out := []linkID{{kind: linkUp, server: sa}, {kind: linkDown, server: sb}}
	if n.cl.Racks > 1 {
		ra, rb := n.cl.Servers[sa].Rack, n.cl.Servers[sb].Rack
		if ra != rb {
			out = append(out,
				linkID{kind: linkRackUp, server: ra},
				linkID{kind: linkRackDown, server: rb})
		}
	}
	return out
}

// StartFlow begins transferring bytes from src to dst and invokes done
// (may be nil) when the last bit arrives. Zero-byte and same-worker flows
// complete after a negligible local-copy delay.
func (n *Network) StartFlow(src, dst int, bytes int64, name string, done func()) *Flow {
	if bytes <= 0 || src == dst {
		latency := sim.Time(float64(bytes*8) / (n.cl.IntraServerBwBps * 4))
		n.eng.After(latency, name+"/local", func() {
			if done != nil {
				done()
			}
		})
		return nil
	}
	return n.StartWeightedFlow(src, dst, bytes, 1, name, done)
}

// StartWeightedFlow is StartFlow with an explicit share weight: on a
// congested link a weight-w flow receives w times the bandwidth of a
// weight-1 flow (weighted max-min fairness). Weights ≤ 0 are treated
// as 1.
func (n *Network) StartWeightedFlow(src, dst int, bytes int64, weight float64, name string, done func()) *Flow {
	return n.startFlow(src, dst, bytes, weight, name, false, done)
}

// startFlow is the shared entry for job and background flows. A flow
// first waits out any fixed propagation delay plus the route's current
// queueing delay, then enters the fair-share allocator.
func (n *Network) startFlow(src, dst int, bytes int64, weight float64, name string, background bool, done func()) *Flow {
	if bytes <= 0 || src == dst {
		latency := sim.Time(float64(bytes*8) / (n.cl.IntraServerBwBps * 4))
		n.eng.After(latency, name+"/local", func() {
			if done != nil {
				done()
			}
		})
		return nil
	}
	if weight <= 0 {
		weight = 1
	}
	requested := n.eng.Now()
	wait := 0.0
	if hops := len(n.route(src, dst)); hops > 0 {
		wait = n.PerHopLatencySec * float64(hops)
	}
	if n.queue != nil {
		wait += n.routeQueueDelay(src, dst)
	}
	if wait > 0 {
		n.eng.After(sim.Time(wait), name+"/prop", func() {
			n.injectFlow(src, dst, bytes, weight, name, requested, background, done)
		})
		return nil
	}
	return n.injectFlow(src, dst, bytes, weight, name, requested, background, done)
}

// injectFlow registers the flow with the fair-share allocator.
func (n *Network) injectFlow(src, dst int, bytes int64, weight float64, name string, requested sim.Time, background bool, done func()) *Flow {
	var fault FlowFault
	if n.fault != nil {
		fault = n.fault(src, dst, name)
	}
	if fault == FaultDrop {
		return nil
	}
	n.advance()
	f := &Flow{
		ID:         n.nextID,
		Name:       name,
		Src:        src,
		Dst:        dst,
		Weight:     weight,
		remaining:  float64(bytes * 8),
		origBits:   float64(bytes * 8),
		links:      n.route(src, dst),
		done:       done,
		started:    n.eng.Now(),
		requested:  requested,
		background: background,
		stalled:    fault == FaultStall,
	}
	n.nextID++
	n.flows[f.ID] = f
	n.reschedule()
	return f
}

// CancelFlow aborts an in-flight flow without firing its callback.
func (n *Network) CancelFlow(f *Flow) {
	if f == nil {
		return
	}
	if _, ok := n.flows[f.ID]; !ok {
		return
	}
	n.advance()
	delete(n.flows, f.ID)
	n.reschedule()
}

// OnCapacityChange must be called after mutating the cluster's bandwidth
// state so in-flight flows are re-shared.
func (n *Network) OnCapacityChange() {
	n.advance()
	n.reschedule()
}

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// advance progresses all flows' remaining volume to the current time
// using the rates assigned at the previous recompute.
func (n *Network) advance() {
	now := n.eng.Now()
	dt := float64(now - n.lastUpdate)
	n.lastUpdate = now
	if dt <= 0 {
		return
	}
	for _, f := range n.flows {
		f.remaining -= f.rate * dt
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
	if n.queue != nil {
		n.queue.advance(dt)
	}
}

// reschedule recomputes max-min fair rates and schedules the next flow
// completion.
func (n *Network) reschedule() {
	if n.completion != nil {
		n.eng.Cancel(n.completion)
		n.completion = nil
	}
	// Finish flows that have already drained (possibly several at once).
	// The threshold is one bit, widened by the time-ULP horizon: once a
	// flow's residual would complete within the float64 resolution of
	// the current clock, advancing time cannot drain it (dt rounds to
	// zero), so treat it as done to avoid a zero-progress event loop.
	now := float64(n.eng.Now())
	var finished []*Flow
	for _, f := range n.flows {
		if f.stalled {
			continue
		}
		thresh := 1.0
		if ulp := f.rate * now * 1e-15; ulp > thresh {
			thresh = ulp
		}
		if f.remaining <= thresh {
			finished = append(finished, f)
		}
	}
	if len(finished) > 0 {
		// Deterministic callback order: by flow ID.
		sort.Slice(finished, func(i, j int) bool { return finished[i].ID < finished[j].ID })
		for _, f := range finished {
			delete(n.flows, f.ID)
			n.TotalBitsDelivered += f.origBits
		}
		// Observers see every completion before any completion callback
		// runs, so an observer-driven estimator is up to date when the
		// callback reacts (e.g. starts the next dependent transfer).
		if len(n.observers) > 0 {
			for _, f := range finished {
				rec := n.record(f)
				for _, obs := range n.observers {
					obs(rec)
				}
			}
		}
		for _, f := range finished {
			if f.done != nil {
				f.done()
			}
		}
		// Callbacks may have started new flows; recompute afresh.
		n.reschedule()
		return
	}
	if len(n.flows) == 0 {
		return
	}
	n.computeRates()
	// Earliest completion among current flows.
	soonest := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		t := f.remaining / f.rate
		if t < soonest {
			soonest = t
		}
	}
	if math.IsInf(soonest, 1) {
		return // no capacity anywhere; stalled until OnCapacityChange
	}
	n.completion = n.eng.After(sim.Time(soonest), "netsim/completion", func() {
		n.completion = nil
		n.advance()
		n.reschedule()
	})
}

// computeRates assigns weighted max-min fair rates via progressive
// filling: each link divides its residual capacity in proportion to the
// unfrozen flows' weights, and the flow with the smallest achievable
// per-weight share freezes first.
func (n *Network) computeRates() {
	type linkState struct {
		cap      float64
		frozen   float64 // load of frozen flows
		unfrozen float64 // total weight of unfrozen flows
		count    int     // active flows traversing the link
	}
	links := make(map[linkID]*linkState)
	for _, f := range n.flows {
		f.rate = 0
		if f.stalled {
			continue
		}
		for _, l := range f.links {
			if _, ok := links[l]; !ok {
				links[l] = &linkState{cap: n.capacity(l)}
			}
			links[l].unfrozen += f.Weight
			links[l].count++
		}
	}
	unfrozen := make(map[uint64]*Flow, len(n.flows))
	for id, f := range n.flows {
		if f.stalled {
			continue
		}
		unfrozen[id] = f
	}
	for len(unfrozen) > 0 {
		// Bottleneck per-weight share across links carrying unfrozen
		// flows.
		min := math.Inf(1)
		for _, ls := range links {
			if ls.unfrozen <= 0 {
				continue
			}
			fair := (ls.cap - ls.frozen) / ls.unfrozen
			if fair < min {
				min = fair
			}
		}
		if math.IsInf(min, 1) {
			break
		}
		if min < 0 {
			min = 0
		}
		// Freeze every unfrozen flow traversing a bottleneck link at
		// weight × per-weight share.
		progressed := false
		for id, f := range unfrozen {
			onBottleneck := false
			for _, l := range f.links {
				ls := links[l]
				fair := (ls.cap - ls.frozen) / ls.unfrozen
				if fair <= min*(1+1e-12) {
					onBottleneck = true
					break
				}
			}
			if onBottleneck {
				f.rate = min * f.Weight
				for _, l := range f.links {
					links[l].frozen += f.rate
					links[l].unfrozen -= f.Weight
				}
				delete(unfrozen, id)
				progressed = true
			}
		}
		if !progressed {
			// Numerical corner: freeze everything at min.
			for id, f := range unfrozen {
				f.rate = min * f.Weight
				for _, l := range f.links {
					links[l].frozen += f.rate
					links[l].unfrozen -= f.Weight
				}
				delete(unfrozen, id)
			}
		}
	}
	if n.queue != nil {
		n.queue.beginEpoch()
		for l, ls := range links {
			util := 0.0
			if ls.cap > 0 {
				util = ls.frozen / ls.cap
			}
			n.queue.observeLoad(l, util, ls.count)
		}
	}
}
