package netsim

import (
	"fmt"
	"math/rand"

	"autopipe/internal/sim"
)

// This file adds the congestion-realism layer on top of the fluid
// fair-share allocator:
//
//   - FlowRecord / AddFlowObserver: per-flow completion telemetry — the
//     only signal a real job's transport layer can actually measure, and
//     the input to the internal/bwe bandwidth estimator;
//   - EnableQueueing: bounded per-link drain queues, so contended links
//     build delay over time instead of instantly re-fair-sharing — the
//     delay-gradient signal congestion controllers key on;
//   - CrossTraffic: an on/off background-flow generator, the congestion
//     counterpart of the fault injector.

// FlowRecord describes one completed transfer as the job's own transport
// layer would observe it: bytes moved, when the transfer was requested,
// when the last bit arrived, and the endpoints. It deliberately carries
// no link-capacity ground truth.
type FlowRecord struct {
	ID   uint64
	Name string
	// Src/Dst are worker (GPU) ids; SrcServer/DstServer the hosting
	// servers whose NICs the flow traversed.
	Src, Dst             int
	SrcServer, DstServer int
	// Bits is the transfer volume.
	Bits float64
	// Start is when the transfer was requested; End when the last bit
	// arrived. The difference includes propagation and queueing delay —
	// that is the point: rising latency at constant volume is the
	// congestion signal.
	Start, End sim.Time
	// Hops is the route length in links.
	Hops int
	// Background marks cross-traffic flows; a job estimating its own
	// available bandwidth never sees these (it cannot in reality).
	Background bool
}

// Seconds returns the observed wall-clock of the transfer.
func (r FlowRecord) Seconds() float64 { return float64(r.End - r.Start) }

// RateBps returns the achieved end-to-end rate including queueing and
// propagation delay — the throughput sample an estimator consumes.
func (r FlowRecord) RateBps() float64 {
	s := r.Seconds()
	if s <= 0 {
		return 0
	}
	return r.Bits / s
}

// AddFlowObserver registers fn to receive a FlowRecord for every
// completed (non-local) flow, in deterministic flow-ID order, before the
// flow's completion callback fires. Cancelled, dropped and stalled flows
// produce no record.
func (n *Network) AddFlowObserver(fn func(FlowRecord)) {
	n.observers = append(n.observers, fn)
}

// record builds the completion record for a finished flow.
func (n *Network) record(f *Flow) FlowRecord {
	return FlowRecord{
		ID:   f.ID,
		Name: f.Name,
		Src:  f.Src, Dst: f.Dst,
		SrcServer:  n.cl.GPUs[f.Src].Server,
		DstServer:  n.cl.GPUs[f.Dst].Server,
		Bits:       f.origBits,
		Start:      f.requested,
		End:        n.eng.Now(),
		Hops:       len(f.links),
		Background: f.background,
	}
}

// QueueConfig parametrises the per-link queueing model. The zero value
// of any field selects its default.
type QueueConfig struct {
	// MaxDelaySec bounds a link's queueing delay — the drain-queue
	// depth divided by line rate (default 0.25s). Real switch buffers
	// are bounded; past this point packets drop rather than queue.
	MaxDelaySec float64
	// BuildPerContenderSec is how much queueing delay a saturated link
	// accumulates per second of saturation per extra contending flow
	// (default 0.02 s/s). More simultaneous senders → faster standing
	// queue growth.
	BuildPerContenderSec float64
	// DrainPerSec is how much queueing delay an unsaturated link sheds
	// per second (default 0.5 s/s).
	DrainPerSec float64
	// SaturationUtil is the utilization above which a link's queue
	// builds (default 0.95).
	SaturationUtil float64
}

func (c *QueueConfig) defaults() {
	if c.MaxDelaySec == 0 {
		c.MaxDelaySec = 0.25
	}
	if c.BuildPerContenderSec == 0 {
		c.BuildPerContenderSec = 0.02
	}
	if c.DrainPerSec == 0 {
		c.DrainPerSec = 0.5
	}
	if c.SaturationUtil == 0 {
		c.SaturationUtil = 0.95
	}
}

// queueModel tracks per-link standing-queue delay. The fluid allocator
// never oversubscribes a link, so "queueing" here models what the fluid
// abstraction erases: when a link runs saturated with multiple
// contenders, real senders' in-flight windows overfill the bottleneck
// buffer and every new transfer waits behind it. Delay builds while the
// link is saturated, bounded by the buffer depth, and drains once load
// falls off.
type queueModel struct {
	cfg QueueConfig
	// load is the last fair-share epoch's per-link (utilization, flow
	// count); delay the accumulated standing-queue delay in seconds.
	load  map[linkID]queueLoad
	delay map[linkID]float64
}

type queueLoad struct {
	util  float64
	count int
}

// EnableQueueing turns on the per-link queueing model. Newly started
// flows wait out their route's current queueing delay before their data
// moves, so flow-completion latency — and therefore every measurement
// derived from it — degrades smoothly under sustained contention. Off by
// default: the pure fluid model keeps analytic timings exact.
func (n *Network) EnableQueueing(cfg QueueConfig) {
	cfg.defaults()
	n.queue = &queueModel{
		cfg:   cfg,
		load:  make(map[linkID]queueLoad),
		delay: make(map[linkID]float64),
	}
}

// QueueDelaySec returns the current queueing delay a src→dst flow would
// wait before injection (telemetry/tests; 0 when queueing is disabled).
func (n *Network) QueueDelaySec(src, dst int) float64 {
	if n.queue == nil {
		return 0
	}
	return n.routeQueueDelay(src, dst)
}

func (n *Network) routeQueueDelay(src, dst int) float64 {
	total := 0.0
	for _, l := range n.route(src, dst) {
		total += n.queue.delay[l]
	}
	return total
}

// beginEpoch resets the load map ahead of a fair-share recompute; links
// with no active flows simply stay absent and drain.
func (q *queueModel) beginEpoch() {
	for l := range q.load {
		delete(q.load, l)
	}
}

// observeLoad records one link's post-allocation state for the epoch.
func (q *queueModel) observeLoad(l linkID, util float64, count int) {
	q.load[l] = queueLoad{util: util, count: count}
}

// advance evolves every link's queue by dt seconds of the current epoch.
func (q *queueModel) advance(dt float64) {
	for l, d := range q.delay {
		ld := q.load[l]
		if ld.util >= q.cfg.SaturationUtil && ld.count >= 2 {
			continue // handled below; avoid double visiting
		}
		d -= q.cfg.DrainPerSec * dt
		if d <= 0 {
			delete(q.delay, l)
			continue
		}
		q.delay[l] = d
	}
	for l, ld := range q.load {
		if ld.util < q.cfg.SaturationUtil || ld.count < 2 {
			continue
		}
		d := q.delay[l] + q.cfg.BuildPerContenderSec*float64(ld.count-1)*dt
		if d > q.cfg.MaxDelaySec {
			d = q.cfg.MaxDelaySec
		}
		q.delay[l] = d
	}
}

// CrossTrafficConfig parametrises a background-traffic generator.
type CrossTrafficConfig struct {
	// Pairs are the (src, dst) worker endpoints whose server NICs the
	// background flows traverse. Each pair runs an independent on/off
	// source.
	Pairs [][2]int
	// BurstBytes is the volume of one background transfer; during an ON
	// period transfers run back-to-back (default 64 MiB).
	BurstBytes int64
	// MeanOnSec / MeanOffSec are the mean durations of the
	// exponentially distributed ON and OFF periods (defaults 2s / 2s).
	// MeanOffSec = 0 with a positive MeanOnSec still alternates; set
	// both to huge values for effectively steady load.
	MeanOnSec, MeanOffSec float64
	// Weight is the flows' fair-share weight (default 1).
	Weight float64
	// Seed drives the on/off process deterministically (default 1).
	Seed int64
}

func (c *CrossTrafficConfig) defaults() {
	if c.BurstBytes == 0 {
		c.BurstBytes = 64 << 20
	}
	if c.MeanOnSec == 0 {
		c.MeanOnSec = 2
	}
	if c.MeanOffSec == 0 {
		c.MeanOffSec = 2
	}
	if c.Weight == 0 {
		c.Weight = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// CrossTraffic injects deterministic on/off background flows — the
// impairment companion to SetFaultInjector. The generated flows contend
// for link capacity like any job flow but are flagged Background in
// completion records, so estimators see only their effect (the job's own
// transfers slowing down), never the cross-traffic itself. That is the
// shared-cluster reality the paper's measurement pipeline must tolerate.
type CrossTraffic struct {
	net *Network
	cfg CrossTrafficConfig
	rng *rand.Rand

	stopped bool
	// BitsInjected totals background volume delivered or in flight
	// (telemetry).
	BitsInjected float64
	// ActiveSources is the number of pairs currently in an ON period.
	ActiveSources int
}

// NewCrossTraffic builds a generator; call Start to begin injecting.
func NewCrossTraffic(net *Network, cfg CrossTrafficConfig) *CrossTraffic {
	cfg.defaults()
	return &CrossTraffic{net: net, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Start schedules every pair's first ON period.
func (x *CrossTraffic) Start() {
	for i, p := range x.cfg.Pairs {
		if p[0] == p[1] {
			continue // no NIC traversed; nothing to contend with
		}
		x.scheduleOn(i, p)
	}
}

// Stop ends injection: no new bursts start; in-flight bursts drain.
func (x *CrossTraffic) Stop() { x.stopped = true }

func (x *CrossTraffic) scheduleOn(i int, p [2]int) {
	off := x.cfg.MeanOffSec * x.rng.ExpFloat64()
	x.net.eng.After(sim.Time(off), fmt.Sprintf("xt%d/on", i), func() {
		if x.stopped {
			return
		}
		x.ActiveSources++
		on := x.cfg.MeanOnSec * x.rng.ExpFloat64()
		until := x.net.eng.Now() + sim.Time(on)
		x.burst(i, p, until)
	})
}

// burst runs back-to-back transfers until the ON period ends, then
// schedules the next cycle.
func (x *CrossTraffic) burst(i int, p [2]int, until sim.Time) {
	if x.stopped || x.net.eng.Now() >= until {
		x.ActiveSources--
		if !x.stopped {
			x.scheduleOn(i, p)
		}
		return
	}
	x.BitsInjected += float64(x.cfg.BurstBytes) * 8
	x.net.startFlow(p[0], p[1], x.cfg.BurstBytes, x.cfg.Weight,
		fmt.Sprintf("xt%d/burst", i), true, func() {
			x.burst(i, p, until)
		})
}
