package netsim

import (
	"math"
	"testing"

	"autopipe/internal/cluster"
	"autopipe/internal/sim"
)

func TestEstimateSecondsRackPathBottleneck(t *testing.T) {
	// Two racks, 10G NICs, 4G rack uplinks: the cross-rack estimate is
	// bound by the rack fabric, the same-rack one by the NIC.
	cl := cluster.NewCluster(cluster.Config{
		Servers: 4, GPUsPerServer: 1, GPUType: cluster.P100,
		NICBwBps: cluster.Gbps(10), Racks: 2, RackUplinkBps: cluster.Gbps(4),
	})
	net := New(sim.NewEngine(), cl)
	// Servers round-robin across racks: 0,2 in rack 0; 1,3 in rack 1.
	sameRack := net.EstimateSeconds(0, 2, 5e8)  // 4e9 bits / 10G
	crossRack := net.EstimateSeconds(0, 1, 5e8) // 4e9 bits / 4G
	if math.Abs(sameRack-0.4) > 1e-9 {
		t.Fatalf("same-rack estimate %v, want 0.4", sameRack)
	}
	if math.Abs(crossRack-1.0) > 1e-9 {
		t.Fatalf("cross-rack estimate %v, want 1.0 (rack uplink bound)", crossRack)
	}
}

func TestEstimateSecondsThrottledRouteFallsBack(t *testing.T) {
	_, cl, net := newNet(10)
	cl.SetNICBandwidth(0) // dead fabric: every route has zero capacity
	// 1e9 bits over the 1 Gbps fallback floor: deadlines stay finite.
	if got := net.EstimateSeconds(0, 2, 1.25e8); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("throttled-route estimate %v, want 1.0 via 1G fallback", got)
	}
	// Heavy external throttling keeps the 1% capacity floor instead:
	// still finite, no fallback needed.
	cl.SetNICBandwidth(cluster.Gbps(10))
	cl.SetExtShareAll(1.0)
	if got := net.EstimateSeconds(0, 2, 1.25e8); math.Abs(got-10.0) > 1e-9 {
		t.Fatalf("floored-route estimate %v, want 10.0 via the 1%% floor", got)
	}
}

func TestStartWeightedFlowNormalizesNonPositiveWeight(t *testing.T) {
	// A weight ≤ 0 is treated as 1: two equal flows sharing the same
	// route must finish together regardless of a negative weight.
	eng, _, net := newNet(10)
	var a, b sim.Time = -1, -1
	net.StartWeightedFlow(0, 2, 6.25e8, -3, "neg", func() { a = eng.Now() })
	net.StartWeightedFlow(1, 3, 6.25e8, 1, "pos", func() { b = eng.Now() })
	eng.RunAll()
	if a < 0 || b < 0 {
		t.Fatal("flows did not complete")
	}
	if math.Abs(float64(a-b)) > 1e-9 {
		t.Fatalf("unequal completion: neg-weight at %v, unit-weight at %v", a, b)
	}
	// Each got half the 10G uplink: 5e9 bits / 5G = 1s.
	if math.Abs(float64(a)-1.0) > 1e-9 {
		t.Fatalf("completion at %v, want 1.0 under equal shares", a)
	}
}
