package netsim

import "fmt"

// SyncScheme selects the parameter-synchronisation pattern used by the
// data-parallel replicas of a pipeline stage (paper §5.1: "two common
// parameter synchronization schemes: PS and Ring All-reduce").
type SyncScheme int

// Synchronisation schemes.
const (
	// ParameterServer: every replica pushes gradients to the first
	// replica (acting as PS) and pulls fresh parameters back.
	ParameterServer SyncScheme = iota
	// RingAllReduce: the replicas run a chunked ring all-reduce,
	// 2(N−1) steps of N parallel transfers of (bytes/N) each.
	RingAllReduce
)

// String implements fmt.Stringer.
func (s SyncScheme) String() string {
	if s == ParameterServer {
		return "PS"
	}
	return "Ring"
}

// ParseSyncScheme maps "PS"/"Ring" to a SyncScheme.
func ParseSyncScheme(s string) (SyncScheme, error) {
	switch s {
	case "PS", "ps":
		return ParameterServer, nil
	case "Ring", "ring", "allreduce":
		return RingAllReduce, nil
	}
	return 0, fmt.Errorf("netsim: unknown sync scheme %q", s)
}

// Sync runs one parameter synchronisation of `bytes` gradient volume
// across the worker set and invokes done when finished. A single worker
// needs no sync. The flow pattern depends on the scheme.
func (n *Network) Sync(scheme SyncScheme, workers []int, bytes int64, name string, done func()) {
	if len(workers) <= 1 || bytes <= 0 {
		n.eng.After(0, name+"/nosync", func() {
			if done != nil {
				done()
			}
		})
		return
	}
	switch scheme {
	case ParameterServer:
		n.psSync(workers, bytes, name, done)
	case RingAllReduce:
		n.ringAllReduce(workers, bytes, name, done)
	default:
		panic("netsim: unknown sync scheme")
	}
}

// psSync: push phase (all replicas → PS in parallel), then pull phase
// (PS → all replicas in parallel). The PS is the first worker, so its
// own copy moves for free.
func (n *Network) psSync(workers []int, bytes int64, name string, done func()) {
	ps := workers[0]
	pushRemaining := 0
	startPull := func() {
		pullRemaining := 0
		for _, w := range workers {
			if w == ps {
				continue
			}
			pullRemaining++
		}
		if pullRemaining == 0 {
			if done != nil {
				done()
			}
			return
		}
		for _, w := range workers {
			if w == ps {
				continue
			}
			n.StartFlow(ps, w, bytes, name+"/pull", func() {
				pullRemaining--
				if pullRemaining == 0 && done != nil {
					done()
				}
			})
		}
	}
	for _, w := range workers {
		if w == ps {
			continue
		}
		pushRemaining++
	}
	if pushRemaining == 0 {
		startPull()
		return
	}
	for _, w := range workers {
		if w == ps {
			continue
		}
		n.StartFlow(w, ps, bytes, name+"/push", func() {
			pushRemaining--
			if pushRemaining == 0 {
				startPull()
			}
		})
	}
}

// ringAllReduce: 2(N−1) synchronous steps; in each step every worker
// sends a (bytes/N)-sized chunk to its ring successor. Steps are
// barrier-synchronised (the standard formulation; slowest link paces the
// ring, which is exactly the behaviour PipeDream's uniform-bandwidth
// model gets wrong on heterogeneous links).
func (n *Network) ringAllReduce(workers []int, bytes int64, name string, done func()) {
	N := len(workers)
	chunk := bytes / int64(N)
	if chunk <= 0 {
		chunk = 1
	}
	totalSteps := 2 * (N - 1)
	var runStep func(step int)
	runStep = func(step int) {
		if step >= totalSteps {
			if done != nil {
				done()
			}
			return
		}
		remaining := N
		for i, w := range workers {
			next := workers[(i+1)%N]
			n.StartFlow(w, next, chunk, fmt.Sprintf("%s/ring-step%d", name, step), func() {
				remaining--
				if remaining == 0 {
					runStep(step + 1)
				}
			})
		}
	}
	runStep(0)
}

// EstimateSyncTime returns the profiler's analytic estimate (unloaded
// network, Cluster.PairBandwidth point estimates) of one synchronisation.
// The pipeline planner uses this; the DES measures the truth.
func (n *Network) EstimateSyncTime(scheme SyncScheme, workers []int, bytes int64) float64 {
	if len(workers) <= 1 || bytes <= 0 {
		return 0
	}
	switch scheme {
	case ParameterServer:
		ps := workers[0]
		worst := 0.0
		for _, w := range workers[1:] {
			t := n.cl.TransferTime(bytes, w, ps)
			if t > worst {
				worst = t
			}
		}
		return 2 * worst // push + pull
	default: // RingAllReduce
		N := len(workers)
		chunk := bytes / int64(N)
		worst := 0.0
		for i, w := range workers {
			t := n.cl.TransferTime(chunk, w, workers[(i+1)%N])
			if t > worst {
				worst = t
			}
		}
		return float64(2*(N-1)) * worst
	}
}
