package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"autopipe/internal/cluster"
	"autopipe/internal/sim"
)

func newNet(nicGbps float64) (*sim.Engine, *cluster.Cluster, *Network) {
	eng := sim.NewEngine()
	cl := cluster.Testbed(cluster.Gbps(nicGbps))
	return eng, cl, New(eng, cl)
}

func TestSingleFlowTime(t *testing.T) {
	eng, _, net := newNet(10)
	var doneAt sim.Time = -1
	// 1.25e9 bytes = 1e10 bits over 10 Gbps = 1 s. GPUs 0 and 2 are on
	// different servers.
	net.StartFlow(0, 2, 1.25e9, "t", func() { doneAt = eng.Now() })
	eng.RunAll()
	if math.Abs(float64(doneAt)-1.0) > 1e-9 {
		t.Fatalf("flow finished at %v, want 1.0", doneAt)
	}
}

func TestIntraServerFlowFaster(t *testing.T) {
	eng, _, net := newNet(10)
	var intra, inter sim.Time
	net.StartFlow(0, 1, 1e9, "intra", func() { intra = eng.Now() })
	eng.RunAll()
	eng2 := sim.NewEngine()
	net2 := New(eng2, cluster.Testbed(cluster.Gbps(10)))
	net2.StartFlow(0, 2, 1e9, "inter", func() { inter = eng2.Now() })
	eng2.RunAll()
	if intra >= inter {
		t.Fatalf("intra %v not faster than inter %v", intra, inter)
	}
}

func TestTwoFlowsShareLink(t *testing.T) {
	eng, _, net := newNet(10)
	var first, second sim.Time
	// Both flows leave server 0 (GPU 0 and GPU 1) to distinct servers;
	// they share the server-0 uplink, so each gets 5 Gbps.
	net.StartFlow(0, 2, 1.25e9, "a", func() { first = eng.Now() })
	net.StartFlow(1, 4, 1.25e9, "b", func() { second = eng.Now() })
	eng.RunAll()
	if math.Abs(float64(first)-2.0) > 1e-6 || math.Abs(float64(second)-2.0) > 1e-6 {
		t.Fatalf("shared flows finished at %v, %v; want 2.0 each", first, second)
	}
}

func TestFlowCompletionFreesBandwidth(t *testing.T) {
	eng, _, net := newNet(10)
	var bigDone sim.Time
	// Small flow shares the uplink for its lifetime; after it ends the
	// big flow gets the full link.
	net.StartFlow(0, 2, 1.25e9/2, "small", nil) // 0.5e10 bits
	net.StartFlow(1, 4, 1.25e9, "big", func() { bigDone = eng.Now() })
	eng.RunAll()
	// small: shares at 5G until done at t=1 (5e9 bits at 5e9 b/s).
	// big: t=1 has 5e9 bits left, now at 10G → finishes at 1.5.
	if math.Abs(float64(bigDone)-1.5) > 1e-6 {
		t.Fatalf("big flow finished at %v, want 1.5", bigDone)
	}
}

func TestCapacityChangeMidFlow(t *testing.T) {
	eng, cl, net := newNet(10)
	var doneAt sim.Time
	net.StartFlow(0, 2, 1.25e9, "x", func() { doneAt = eng.Now() })
	eng.Schedule(0.5, "halve", func() {
		cl.SetNICBandwidth(cluster.Gbps(5))
		net.OnCapacityChange()
	})
	eng.RunAll()
	// 0.5s at 10G moves half; remaining 5e9 bits at 5G takes 1s → 1.5 total.
	if math.Abs(float64(doneAt)-1.5) > 1e-6 {
		t.Fatalf("flow finished at %v, want 1.5", doneAt)
	}
}

func TestSameWorkerFlowIsLocal(t *testing.T) {
	eng, _, net := newNet(10)
	done := false
	f := net.StartFlow(3, 3, 1e9, "local", func() { done = true })
	if f != nil {
		t.Fatal("same-worker transfer should not create a network flow")
	}
	eng.RunAll()
	if !done {
		t.Fatal("local flow callback never fired")
	}
}

func TestZeroByteFlow(t *testing.T) {
	eng, _, net := newNet(10)
	done := false
	net.StartFlow(0, 2, 0, "zero", func() { done = true })
	eng.RunAll()
	if !done {
		t.Fatal("zero-byte flow callback never fired")
	}
}

func TestCancelFlow(t *testing.T) {
	eng, _, net := newNet(10)
	fired := false
	f := net.StartFlow(0, 2, 1e12, "doomed", func() { fired = true })
	eng.Schedule(0.1, "cancel", func() { net.CancelFlow(f) })
	eng.RunAll()
	if fired {
		t.Fatal("canceled flow fired its callback")
	}
	if net.ActiveFlows() != 0 {
		t.Fatal("canceled flow still active")
	}
}

func TestPSSyncCompletesAndTiming(t *testing.T) {
	eng, _, net := newNet(10)
	var doneAt sim.Time = -1
	// Workers 0,2,4 on three distinct servers; PS = worker 0.
	// Push: 2 flows into server0 downlink, each 1.25e9 B = 1e10 bits
	// sharing 10G downlink → 2s. Pull: 2 flows out of server0 uplink → 2s.
	net.Sync(ParameterServer, []int{0, 2, 4}, 1.25e9, "ps", func() { doneAt = eng.Now() })
	eng.RunAll()
	if math.Abs(float64(doneAt)-4.0) > 1e-6 {
		t.Fatalf("PS sync finished at %v, want 4.0", doneAt)
	}
}

func TestRingAllReduceCompletesAndTiming(t *testing.T) {
	eng, _, net := newNet(10)
	var doneAt sim.Time = -1
	// Ring over 0,2,4 (three servers): chunk = bytes/3, 4 steps.
	// Each step: three disjoint server pairs, each chunk at 10G.
	bytes := int64(3.75e9) // chunk 1.25e9 B = 1e10 bits → 1 s/step
	net.Sync(RingAllReduce, []int{0, 2, 4}, bytes, "ring", func() { doneAt = eng.Now() })
	eng.RunAll()
	if math.Abs(float64(doneAt)-4.0) > 1e-6 {
		t.Fatalf("ring all-reduce finished at %v, want 4.0 (4 steps × 1s)", doneAt)
	}
}

func TestSyncSingleWorkerNoop(t *testing.T) {
	eng, _, net := newNet(10)
	done := 0
	net.Sync(ParameterServer, []int{3}, 1e9, "solo", func() { done++ })
	net.Sync(RingAllReduce, []int{3}, 1e9, "solo", func() { done++ })
	eng.RunAll()
	if done != 2 {
		t.Fatalf("single-worker syncs fired %d callbacks, want 2", done)
	}
	if eng.Now() != 0 {
		t.Fatalf("single-worker sync consumed time: %v", eng.Now())
	}
}

func TestEstimateSyncTimeOrdering(t *testing.T) {
	_, _, net := newNet(10)
	// For the same volume, ring moves 2(N-1)/N of the bytes per worker
	// link vs PS's 2× at the server — on equal links ring is faster for
	// large N. Sanity: both positive, zero for single worker.
	if net.EstimateSyncTime(ParameterServer, []int{0}, 1e9) != 0 {
		t.Fatal("single-worker estimate must be 0")
	}
	ps := net.EstimateSyncTime(ParameterServer, []int{0, 2, 4, 6}, 1e9)
	ring := net.EstimateSyncTime(RingAllReduce, []int{0, 2, 4, 6}, 1e9)
	if ps <= 0 || ring <= 0 {
		t.Fatalf("estimates not positive: ps=%v ring=%v", ps, ring)
	}
	if ring >= ps {
		t.Fatalf("ring estimate %v should beat PS %v on uniform links", ring, ps)
	}
}

func TestParseSyncScheme(t *testing.T) {
	if s, err := ParseSyncScheme("PS"); err != nil || s != ParameterServer {
		t.Fatal("ParseSyncScheme(PS) failed")
	}
	if s, err := ParseSyncScheme("ring"); err != nil || s != RingAllReduce {
		t.Fatal("ParseSyncScheme(ring) failed")
	}
	if _, err := ParseSyncScheme("carrier-pigeon"); err == nil {
		t.Fatal("ParseSyncScheme accepted junk")
	}
}

// Property: max-min rates never oversubscribe a link and the allocation
// is work-conserving for a single bottleneck.
func TestQuickFairShareConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		eng, cl, net := newNet(10)
		nFlows := 1 + r.Intn(6)
		for i := 0; i < nFlows; i++ {
			src := r.Intn(cl.NumGPUs())
			dst := r.Intn(cl.NumGPUs())
			if src == dst {
				dst = (dst + 1) % cl.NumGPUs()
			}
			net.StartFlow(src, dst, int64(1e8+r.Int63n(1e9)), "q", nil)
		}
		// After scheduling, rates are assigned. Verify no link exceeded.
		load := map[string]float64{}
		for _, fl := range net.flows {
			for _, l := range fl.links {
				load[l.String()] += fl.rate
			}
		}
		for name, tot := range load {
			if tot > cluster.Gbps(10)*(1+1e-9) && name[0] != 'i' {
				return false
			}
			if tot > cl.IntraServerBwBps*(1+1e-9) {
				return false
			}
		}
		eng.RunAll()
		return net.ActiveFlows() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: total delivered volume equals total injected volume.
func TestQuickVolumeConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		eng, cl, net := newNet(25)
		var injected float64
		n := 1 + r.Intn(8)
		for i := 0; i < n; i++ {
			src := r.Intn(cl.NumGPUs())
			dst := (src + 1 + r.Intn(cl.NumGPUs()-1)) % cl.NumGPUs()
			b := int64(1e7 + r.Int63n(1e8))
			if src != dst {
				injected += float64(b * 8)
				net.StartFlow(src, dst, b, "v", nil)
			}
		}
		eng.RunAll()
		return math.Abs(net.TotalBitsDelivered-injected) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicCompletionOrder(t *testing.T) {
	run := func() []string {
		eng, _, net := newNet(10)
		var order []string
		for i, pair := range [][2]int{{0, 2}, {1, 4}, {2, 6}, {3, 8}} {
			name := string(rune('a' + i))
			net.StartFlow(pair[0], pair[1], 1e9, name, func() { order = append(order, name) })
		}
		eng.RunAll()
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic completion count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic order: %v vs %v", a, b)
		}
	}
}

func TestRackUplinkOversubscription(t *testing.T) {
	// Two racks, oversubscribed 4:1 core: four cross-rack flows share
	// one 10G uplink while four intra-rack flows run at NIC speed.
	mk := func(crossRack bool) sim.Time {
		eng := sim.NewEngine()
		cl := cluster.NewCluster(cluster.Config{
			Servers: 8, GPUsPerServer: 1, GPUType: cluster.P100,
			NICBwBps: cluster.Gbps(10),
			Racks:    2, RackUplinkBps: cluster.Gbps(10),
		})
		net := New(eng, cl)
		var last sim.Time
		// Servers 0,2,4,6 → rack 0; 1,3,5,7 → rack 1 (round-robin).
		for i := 0; i < 4; i++ {
			src := 2 * i // rack 0
			dst := 2*((i+1)%4) + 1
			if !crossRack {
				dst = 2 * ((i + 1) % 4) // stay in rack 0
			}
			net.StartFlow(src, dst, 1.25e9, "rk", func() { last = eng.Now() })
		}
		eng.RunAll()
		return last
	}
	intra := mk(false)
	cross := mk(true)
	if float64(cross) < float64(intra)*3 {
		t.Fatalf("oversubscribed cross-rack flows (%v) not ~4x slower than intra-rack (%v)", cross, intra)
	}
}

func TestSingleSwitchHasNoRackLinks(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.Testbed(cluster.Gbps(10))
	net := New(eng, cl)
	var done sim.Time
	net.StartFlow(0, 2, 1.25e9, "flat", func() { done = eng.Now() })
	eng.RunAll()
	if math.Abs(float64(done)-1.0) > 1e-6 {
		t.Fatalf("single-switch flow took %v, want 1.0", done)
	}
}

func TestRackPairBandwidth(t *testing.T) {
	cl := cluster.NewCluster(cluster.Config{
		Servers: 4, GPUsPerServer: 1, GPUType: cluster.P100,
		NICBwBps: cluster.Gbps(40),
		Racks:    2, RackUplinkBps: cluster.Gbps(10),
	})
	// Server racks: 0→r0, 1→r1, 2→r0, 3→r1.
	if got := cl.PairBandwidth(0, 2); got != cluster.Gbps(40) {
		t.Fatalf("same-rack pair bw = %v, want 40G", got)
	}
	if got := cl.PairBandwidth(0, 1); got != cluster.Gbps(10) {
		t.Fatalf("cross-rack pair bw = %v, want uplink 10G", got)
	}
}

func TestWeightedSharing(t *testing.T) {
	eng, _, net := newNet(10)
	var hiDone, loDone sim.Time
	// Two flows share server-0's uplink; the weight-3 flow gets 7.5G,
	// the weight-1 flow 2.5G.
	net.StartWeightedFlow(0, 2, 1.25e9, 3, "hi", func() { hiDone = eng.Now() })
	net.StartWeightedFlow(1, 4, 1.25e9, 1, "lo", func() { loDone = eng.Now() })
	eng.RunAll()
	// hi: 1e10 bits at 7.5G → 4/3 s. After it ends, lo has
	// 1e10 − 2.5e9·4/3 = 6.67e9 bits at full 10G → +0.667s ⇒ 2.0s.
	if math.Abs(float64(hiDone)-4.0/3) > 1e-6 {
		t.Fatalf("high-weight flow finished at %v, want 1.333", hiDone)
	}
	if math.Abs(float64(loDone)-2.0) > 1e-6 {
		t.Fatalf("low-weight flow finished at %v, want 2.0", loDone)
	}
}

func TestWeightZeroTreatedAsOne(t *testing.T) {
	eng, _, net := newNet(10)
	var done sim.Time
	net.StartWeightedFlow(0, 2, 1.25e9, 0, "z", func() { done = eng.Now() })
	eng.RunAll()
	if math.Abs(float64(done)-1.0) > 1e-6 {
		t.Fatalf("zero-weight flow finished at %v, want 1.0", done)
	}
}

// Property: weighted allocation still conserves link capacity.
func TestQuickWeightedConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		eng, cl, net := newNet(10)
		for i := 0; i < 1+r.Intn(6); i++ {
			src := r.Intn(cl.NumGPUs())
			dst := (src + 1 + r.Intn(cl.NumGPUs()-1)) % cl.NumGPUs()
			net.StartWeightedFlow(src, dst, int64(1e8+r.Int63n(1e9)), 0.5+4*r.Float64(), "w", nil)
		}
		load := map[string]float64{}
		for _, fl := range net.flows {
			for _, l := range fl.links {
				load[l.String()] += fl.rate
			}
		}
		for name, tot := range load {
			if name[0] != 'i' && tot > cluster.Gbps(10)*(1+1e-9) {
				return false
			}
		}
		eng.RunAll()
		return net.ActiveFlows() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPerHopLatency(t *testing.T) {
	eng, _, net := newNet(10)
	net.PerHopLatencySec = 0.1
	var done sim.Time
	// Cross-server flow: 2 hops (src up + dst down) → 0.2s latency
	// before the 1.0s transfer.
	net.StartFlow(0, 2, 1.25e9, "lat", func() { done = eng.Now() })
	eng.RunAll()
	if math.Abs(float64(done)-1.2) > 1e-6 {
		t.Fatalf("flow with latency finished at %v, want 1.2", done)
	}
}

func TestPerHopLatencyPenalisesChattyRing(t *testing.T) {
	run := func(lat float64) float64 {
		eng, _, net := newNet(10)
		net.PerHopLatencySec = lat
		var done sim.Time
		net.Sync(RingAllReduce, []int{0, 2, 4, 6}, 4e8, "chatty", func() { done = eng.Now() })
		eng.RunAll()
		return float64(done)
	}
	if base, latency := run(0), run(0.05); latency <= base {
		t.Fatal("per-hop latency did not slow the barriered ring")
	}
}
