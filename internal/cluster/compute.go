package cluster

import (
	"autopipe/internal/model"
)

// Arithmetic efficiency by layer kind: the fraction of peak FLOPS a real
// kernel sustains. Convolutions and large GEMMs run near half of peak on
// a P100-class part; memory-bound layers far lower.
func kindEfficiency(k model.LayerKind) float64 {
	switch k {
	case model.Conv:
		return 0.45
	case model.FullyConnected:
		return 0.60
	case model.Attention:
		return 0.50
	case model.Pool:
		return 0.05
	case model.Norm:
		return 0.05
	case model.Embedding:
		return 0.10
	default:
		return 0.30
	}
}

// perLayerOverhead is the fixed kernel-launch/framework overhead per layer
// invocation in seconds. It keeps tiny layers from looking free.
const perLayerOverhead = 30e-6

// BPComputeFactor is the backward/forward compute-time ratio. The paper's
// Figure 2 idealisation states "the forward passes take exactly half time
// of the backward pass"; real frameworks measure close to 2×.
const BPComputeFactor = 2.0

// FPTime returns the forward-pass compute time in seconds for one
// mini-batch of layer l on GPU g, accounting for the device's current
// time-share.
func (c *Cluster) FPTime(l model.Layer, miniBatch int, gpu int) float64 {
	g := c.GPUs[gpu]
	eff := kindEfficiency(l.Kind)
	flops := l.FLOPs * float64(miniBatch)
	t := flops / (g.Type.TFLOPS * 1e12 * eff)
	return (t + perLayerOverhead) / g.Share()
}

// BPTime returns the backward-pass compute time in seconds for one
// mini-batch of layer l on GPU g.
func (c *Cluster) BPTime(l model.Layer, miniBatch int, gpu int) float64 {
	return c.FPTime(l, miniBatch, gpu) * BPComputeFactor
}

// StageFPTime sums forward times for layers [lo, hi) of m on GPU g.
func (c *Cluster) StageFPTime(m *model.Model, lo, hi, gpu int) float64 {
	t := 0.0
	for i := lo; i < hi; i++ {
		t += c.FPTime(m.Layers[i], m.MiniBatch, gpu)
	}
	return t
}

// StageBPTime sums backward times for layers [lo, hi) of m on GPU g.
func (c *Cluster) StageBPTime(m *model.Model, lo, hi, gpu int) float64 {
	return c.StageFPTime(m, lo, hi, gpu) * BPComputeFactor
}

// PairBandwidth returns the bandwidth in bits/sec available for a single
// flow between two workers when no other simulated flow competes: the
// intra-server path if co-located, otherwise the min of the two NICs'
// available bandwidth. (Concurrent flows additionally share these links —
// package netsim models that; this is the profiler's point estimate.)
func (c *Cluster) PairBandwidth(a, b int) float64 {
	if a == b {
		return c.IntraServerBwBps * 4 // device-local copy, effectively free
	}
	if c.SameServer(a, b) {
		return c.IntraServerBwBps
	}
	src := c.ServerOf(a).AvailBwBps()
	dst := c.ServerOf(b).AvailBwBps()
	bw := src
	if dst < bw {
		bw = dst
	}
	if c.Racks > 1 && !c.SameRack(a, b) && c.RackUplinkBps < bw {
		bw = c.RackUplinkBps
	}
	return bw
}

// TransferTime returns the unloaded-network time in seconds to move bytes
// between two workers.
func (c *Cluster) TransferTime(bytes int64, a, b int) float64 {
	bw := c.PairBandwidth(a, b)
	return float64(bytes*8) / bw
}
