// Package cluster models the shared GPU cluster of the paper's testbed:
// servers each holding GPUs and a NIC behind a single non-blocking switch,
// with resources (GPU share, link bandwidth) that fluctuate as competing
// jobs come and go.
//
// This is the substitute for the paper's physical testbed (5 servers ×
// 2 NVIDIA P100, Mellanox 100 Gbps NICs, one SN2100 switch): AutoPipe only
// observes per-layer compute times and per-worker bandwidth, both of which
// this model produces deterministically.
package cluster

import (
	"fmt"
)

// GPUType describes an accelerator model by its usable fp32 throughput.
type GPUType struct {
	Name   string
	TFLOPS float64 // peak fp32 TFLOPS
}

// GPU type presets matching the paper's shared-cluster discussion
// ("there may be multiple types of GPUs ... e.g., P100, V100, A100").
var (
	P100 = GPUType{Name: "P100", TFLOPS: 9.3}
	V100 = GPUType{Name: "V100", TFLOPS: 14.0}
	A100 = GPUType{Name: "A100", TFLOPS: 19.5}
)

// GPU is one accelerator in the cluster. CompetingJobs is the number of
// other jobs time-sharing the device; the measured job receives a
// 1/(1+CompetingJobs) share of the compute throughput (§3.2 of the paper
// observes roughly this halving with one competitor).
type GPU struct {
	ID            int
	Server        int
	Type          GPUType
	CompetingJobs int
}

// Share returns the fraction of the GPU available to the measured job.
func (g *GPU) Share() float64 { return 1.0 / float64(1+g.CompetingJobs) }

// Server is one physical machine with a NIC.
type Server struct {
	ID int
	// Rack is the leaf switch the server hangs off (always 0 in the
	// default single-switch topology).
	Rack int
	// NICBwBps is the physical NIC speed in bits per second.
	NICBwBps float64
	// ExtShare is the fraction of NIC bandwidth consumed by traffic
	// outside the simulated flows (other tenants' jobs, bulk transfers).
	ExtShare float64
}

// AvailBwBps returns NIC bandwidth available to simulated flows.
func (s *Server) AvailBwBps() float64 {
	f := 1 - s.ExtShare
	if f < 0.01 {
		f = 0.01
	}
	return s.NICBwBps * f
}

// Cluster is the full resource model.
type Cluster struct {
	Servers []*Server
	GPUs    []*GPU
	// IntraServerBwBps is the GPU-to-GPU bandwidth inside one server
	// (PCIe/NVLink path), not shared with the NIC.
	IntraServerBwBps float64
	// Racks is the number of leaf switches; >1 enables the two-tier
	// topology in which cross-rack traffic shares each rack's core
	// uplink of RackUplinkBps (oversubscription). 0/1 = single switch.
	Racks int
	// RackUplinkBps is the leaf→core uplink capacity per rack.
	RackUplinkBps float64
	version       uint64
}

// Config parametrises NewCluster.
type Config struct {
	Servers          int
	GPUsPerServer    int
	GPUType          GPUType
	NICBwBps         float64
	IntraServerBwBps float64 // defaults to 100 Gbps if zero
	// Racks > 1 spreads servers round-robin across leaf switches with
	// RackUplinkBps of core capacity each (two-tier topology).
	Racks         int
	RackUplinkBps float64
}

// Gbps converts gigabits/second to bits/second.
func Gbps(g float64) float64 { return g * 1e9 }

// NewCluster builds a homogeneous cluster. The paper's testbed is
// NewCluster(Config{Servers: 5, GPUsPerServer: 2, GPUType: P100,
// NICBwBps: Gbps(100)}).
func NewCluster(cfg Config) *Cluster {
	if cfg.Servers <= 0 || cfg.GPUsPerServer <= 0 {
		panic(fmt.Sprintf("cluster: invalid config %+v", cfg))
	}
	if cfg.IntraServerBwBps == 0 {
		cfg.IntraServerBwBps = Gbps(100)
	}
	if cfg.GPUType.TFLOPS == 0 {
		cfg.GPUType = P100
	}
	if cfg.Racks < 1 {
		cfg.Racks = 1
	}
	if cfg.Racks > 1 && cfg.RackUplinkBps == 0 {
		cfg.RackUplinkBps = cfg.NICBwBps * 2
	}
	c := &Cluster{
		IntraServerBwBps: cfg.IntraServerBwBps,
		Racks:            cfg.Racks,
		RackUplinkBps:    cfg.RackUplinkBps,
	}
	for s := 0; s < cfg.Servers; s++ {
		c.Servers = append(c.Servers, &Server{ID: s, Rack: s % cfg.Racks, NICBwBps: cfg.NICBwBps})
		for g := 0; g < cfg.GPUsPerServer; g++ {
			c.GPUs = append(c.GPUs, &GPU{ID: len(c.GPUs), Server: s, Type: cfg.GPUType})
		}
	}
	return c
}

// Testbed returns the paper's testbed topology at the given NIC speed:
// 5 servers × 2 P100 GPUs behind one switch.
func Testbed(nicBwBps float64) *Cluster {
	return NewCluster(Config{Servers: 5, GPUsPerServer: 2, GPUType: P100, NICBwBps: nicBwBps})
}

// NumGPUs returns the worker count N.
func (c *Cluster) NumGPUs() int { return len(c.GPUs) }

// GPU returns worker i.
func (c *Cluster) GPU(i int) *GPU { return c.GPUs[i] }

// ServerOf returns the server hosting worker i.
func (c *Cluster) ServerOf(i int) *Server { return c.Servers[c.GPUs[i].Server] }

// SameServer reports whether two workers share a machine (and therefore
// communicate over the intra-server path instead of the network).
func (c *Cluster) SameServer(a, b int) bool {
	return c.GPUs[a].Server == c.GPUs[b].Server
}

// SameRack reports whether two workers' servers hang off the same leaf
// switch (trivially true in the single-switch topology).
func (c *Cluster) SameRack(a, b int) bool {
	return c.ServerOf(a).Rack == c.ServerOf(b).Rack
}

// SetRackUplink changes every rack's core uplink capacity.
func (c *Cluster) SetRackUplink(bps float64) {
	c.RackUplinkBps = bps
	c.version++
}

// Version increases every time a mutating method runs; the AutoPipe
// resource-change detector polls it.
func (c *Cluster) Version() uint64 { return c.version }

// SetNICBandwidth changes the physical NIC speed of every server
// (the paper's Figure 9 dynamic-bandwidth experiment).
func (c *Cluster) SetNICBandwidth(bps float64) {
	for _, s := range c.Servers {
		s.NICBwBps = bps
	}
	c.version++
}

// SetExtShare sets the external-traffic share on one server's NIC.
func (c *Cluster) SetExtShare(server int, share float64) {
	c.Servers[server].ExtShare = share
	c.version++
}

// SetExtShareAll sets the external-traffic share on every NIC.
func (c *Cluster) SetExtShareAll(share float64) {
	for _, s := range c.Servers {
		s.ExtShare = share
	}
	c.version++
}

// AddCompetingJob adds one competing job to every GPU (the paper's
// Figure 4/10 GPU-contention experiments add a ResNet50 trainer per GPU).
func (c *Cluster) AddCompetingJob() {
	for _, g := range c.GPUs {
		g.CompetingJobs++
	}
	c.version++
}

// RemoveCompetingJob removes one competing job from every GPU, if any.
func (c *Cluster) RemoveCompetingJob() {
	for _, g := range c.GPUs {
		if g.CompetingJobs > 0 {
			g.CompetingJobs--
		}
	}
	c.version++
}

// SetCompetingJobs sets the competing-job count on a single GPU.
func (c *Cluster) SetCompetingJobs(gpu, n int) {
	if n < 0 {
		n = 0
	}
	c.GPUs[gpu].CompetingJobs = n
	c.version++
}

// SetGPUType swaps the accelerator type of a single GPU (heterogeneous
// cluster scenarios).
func (c *Cluster) SetGPUType(gpu int, t GPUType) {
	c.GPUs[gpu].Type = t
	c.version++
}

// Snapshot captures the observable resource state — what the AutoPipe
// profiler reads each iteration (Table 1 dynamic metrics B_i plus the
// per-GPU speed factors that determine FP/BP times).
type Snapshot struct {
	NICBwBps  []float64 // per server, after external contention
	GPUShare  []float64 // per GPU
	GPUTFLOPS []float64 // per GPU, type peak
}

// Snapshot returns the current observable state.
func (c *Cluster) Snapshot() Snapshot {
	s := Snapshot{}
	for _, srv := range c.Servers {
		s.NICBwBps = append(s.NICBwBps, srv.AvailBwBps())
	}
	for _, g := range c.GPUs {
		s.GPUShare = append(s.GPUShare, g.Share())
		s.GPUTFLOPS = append(s.GPUTFLOPS, g.Type.TFLOPS)
	}
	return s
}
