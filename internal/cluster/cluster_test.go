package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"autopipe/internal/model"
)

func TestTestbedTopology(t *testing.T) {
	c := Testbed(Gbps(100))
	if len(c.Servers) != 5 {
		t.Fatalf("servers = %d, want 5", len(c.Servers))
	}
	if c.NumGPUs() != 10 {
		t.Fatalf("GPUs = %d, want 10", c.NumGPUs())
	}
	if c.GPU(0).Type.Name != "P100" {
		t.Fatalf("GPU type = %s, want P100", c.GPU(0).Type.Name)
	}
	if !c.SameServer(0, 1) || c.SameServer(1, 2) {
		t.Fatal("GPU placement: 0,1 should share server 0; 1,2 should not")
	}
}

func TestGPUShare(t *testing.T) {
	g := &GPU{}
	if g.Share() != 1 {
		t.Fatalf("exclusive share = %v", g.Share())
	}
	g.CompetingJobs = 2
	if math.Abs(g.Share()-1.0/3) > 1e-12 {
		t.Fatalf("share with 2 competitors = %v", g.Share())
	}
}

func TestAddRemoveCompetingJob(t *testing.T) {
	c := Testbed(Gbps(10))
	v0 := c.Version()
	c.AddCompetingJob()
	if c.Version() == v0 {
		t.Fatal("Version not bumped by AddCompetingJob")
	}
	for _, g := range c.GPUs {
		if g.CompetingJobs != 1 {
			t.Fatal("competing job not added everywhere")
		}
	}
	c.RemoveCompetingJob()
	c.RemoveCompetingJob() // extra removal must not go negative
	for _, g := range c.GPUs {
		if g.CompetingJobs != 0 {
			t.Fatal("competing job count wrong after removal")
		}
	}
}

func TestExtShareReducesBandwidth(t *testing.T) {
	c := Testbed(Gbps(100))
	full := c.ServerOf(0).AvailBwBps()
	c.SetExtShare(0, 0.5)
	if got := c.ServerOf(0).AvailBwBps(); math.Abs(got-full/2) > 1 {
		t.Fatalf("AvailBw after 50%% ext = %v, want %v", got, full/2)
	}
	// floor: never below 1% even with absurd shares
	c.SetExtShare(0, 2.0)
	if got := c.ServerOf(0).AvailBwBps(); got < full*0.009 {
		t.Fatalf("AvailBw floor broken: %v", got)
	}
}

func TestSetNICBandwidth(t *testing.T) {
	c := Testbed(Gbps(10))
	c.SetNICBandwidth(Gbps(25))
	for _, s := range c.Servers {
		if s.NICBwBps != Gbps(25) {
			t.Fatal("SetNICBandwidth did not apply to all servers")
		}
	}
}

func TestFPTimeScalesWithShareAndType(t *testing.T) {
	c := Testbed(Gbps(100))
	l := model.Layer{Kind: model.Conv, FLOPs: 1e9, OutElems: 1, InElems: 1}
	base := c.FPTime(l, 64, 0)
	c.SetCompetingJobs(0, 1)
	halved := c.FPTime(l, 64, 0)
	if math.Abs(halved-2*base) > 1e-9 {
		t.Fatalf("contended FPTime = %v, want 2×%v", halved, base)
	}
	c.SetCompetingJobs(0, 0)
	c.SetGPUType(0, A100)
	faster := c.FPTime(l, 64, 0)
	if faster >= base {
		t.Fatalf("A100 time %v not below P100 time %v", faster, base)
	}
}

func TestBPTimeIsDoubleFP(t *testing.T) {
	c := Testbed(Gbps(100))
	l := model.Layer{Kind: model.FullyConnected, FLOPs: 5e8, OutElems: 1, InElems: 1}
	if math.Abs(c.BPTime(l, 32, 3)-2*c.FPTime(l, 32, 3)) > 1e-12 {
		t.Fatal("BPTime != 2×FPTime")
	}
}

func TestStageTimesSum(t *testing.T) {
	c := Testbed(Gbps(100))
	m := model.Uniform(4, 1e9, 100)
	total := c.StageFPTime(m, 0, 4, 0)
	parts := c.StageFPTime(m, 0, 2, 0) + c.StageFPTime(m, 2, 4, 0)
	if math.Abs(total-parts) > 1e-12 {
		t.Fatalf("stage time not additive: %v vs %v", total, parts)
	}
}

func TestPairBandwidth(t *testing.T) {
	c := Testbed(Gbps(10))
	intra := c.PairBandwidth(0, 1) // same server
	inter := c.PairBandwidth(1, 2) // across servers
	if intra <= inter {
		t.Fatalf("intra-server bw %v should exceed NIC bw %v", intra, inter)
	}
	if inter != Gbps(10) {
		t.Fatalf("inter-server bw = %v, want 10G", inter)
	}
	// asymmetric contention: min of endpoints
	c.SetExtShare(1, 0.5) // server of GPU 2,3
	if got := c.PairBandwidth(0, 2); math.Abs(got-Gbps(5)) > 1 {
		t.Fatalf("contended pair bw = %v, want 5G", got)
	}
}

func TestTransferTime(t *testing.T) {
	c := Testbed(Gbps(10))
	// 1.25 GB at 10 Gbps = 1 second
	got := c.TransferTime(1.25e9/8*8, 1, 2) // 1.25e9 bytes
	if math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("TransferTime = %v, want 1.0", got)
	}
}

func TestSnapshotShapes(t *testing.T) {
	c := Testbed(Gbps(40))
	c.AddCompetingJob()
	s := c.Snapshot()
	if len(s.NICBwBps) != 5 || len(s.GPUShare) != 10 || len(s.GPUTFLOPS) != 10 {
		t.Fatalf("snapshot shapes wrong: %+v", s)
	}
	if s.GPUShare[0] != 0.5 {
		t.Fatalf("snapshot share = %v, want 0.5", s.GPUShare[0])
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCluster with zero servers did not panic")
		}
	}()
	NewCluster(Config{Servers: 0, GPUsPerServer: 2})
}

// Property: FPTime is monotone decreasing in GPU TFLOPS and monotone
// increasing in competing jobs.
func TestQuickFPTimeMonotone(t *testing.T) {
	f := func(flopsRaw uint32, jobs uint8) bool {
		c := Testbed(Gbps(100))
		l := model.Layer{Kind: model.Conv, FLOPs: float64(flopsRaw%1000000) + 1, OutElems: 1, InElems: 1}
		tP := c.FPTime(l, 64, 0)
		c.SetGPUType(0, V100)
		tV := c.FPTime(l, 64, 0)
		if tV >= tP {
			return false
		}
		j := int(jobs % 8)
		c.SetCompetingJobs(0, j)
		tShared := c.FPTime(l, 64, 0)
		return tShared >= tV*0.999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSameRackAndUplink(t *testing.T) {
	c := NewCluster(Config{
		Servers: 4, GPUsPerServer: 1, GPUType: V100,
		NICBwBps: Gbps(40), Racks: 2, RackUplinkBps: Gbps(10),
	})
	// Round-robin racks: servers 0,2 → rack 0; 1,3 → rack 1.
	if !c.SameRack(0, 2) || c.SameRack(0, 1) {
		t.Fatal("SameRack wrong")
	}
	v := c.Version()
	c.SetRackUplink(Gbps(20))
	if c.RackUplinkBps != Gbps(20) || c.Version() == v {
		t.Fatal("SetRackUplink did not apply or bump version")
	}
}

func TestDefaultRackUplink(t *testing.T) {
	c := NewCluster(Config{Servers: 2, GPUsPerServer: 1, NICBwBps: Gbps(10), Racks: 2})
	if c.RackUplinkBps != Gbps(20) {
		t.Fatalf("default uplink = %v, want 2×NIC", c.RackUplinkBps)
	}
}

func TestSetExtShareAll(t *testing.T) {
	c := Testbed(Gbps(10))
	c.SetExtShareAll(0.25)
	for _, s := range c.Servers {
		if s.ExtShare != 0.25 {
			t.Fatal("SetExtShareAll missed a server")
		}
	}
}

func TestSetCompetingJobsClampsNegative(t *testing.T) {
	c := Testbed(Gbps(10))
	c.SetCompetingJobs(0, -5)
	if c.GPU(0).CompetingJobs != 0 {
		t.Fatal("negative competing jobs not clamped")
	}
}

func TestStageBPTimeIsDoubleStageFP(t *testing.T) {
	c := Testbed(Gbps(10))
	m := model.Uniform(4, 1e9, 100)
	if math.Abs(c.StageBPTime(m, 0, 4, 0)-2*c.StageFPTime(m, 0, 4, 0)) > 1e-15 {
		t.Fatal("StageBPTime != 2×StageFPTime")
	}
}

func TestKindEfficiencyOrdering(t *testing.T) {
	// Compute-dense kinds must run closer to peak than memory-bound ones;
	// exercised via FPTime across kinds.
	c := Testbed(Gbps(10))
	times := map[model.LayerKind]float64{}
	for _, k := range []model.LayerKind{
		model.Conv, model.FullyConnected, model.Attention,
		model.Pool, model.Norm, model.Embedding, model.LayerKind(99),
	} {
		l := model.Layer{Kind: k, FLOPs: 1e9, OutElems: 1, InElems: 1}
		times[k] = c.FPTime(l, 64, 0)
	}
	if times[model.Conv] >= times[model.Pool] {
		t.Fatal("conv (efficient) should be faster per FLOP than pool (memory-bound)")
	}
	if times[model.FullyConnected] >= times[model.Embedding] {
		t.Fatal("fc should beat embedding per FLOP")
	}
	if times[model.LayerKind(99)] <= 0 {
		t.Fatal("unknown kind must still produce a time")
	}
}

func TestPairBandwidthSameWorker(t *testing.T) {
	c := Testbed(Gbps(10))
	if c.PairBandwidth(3, 3) <= c.IntraServerBwBps {
		t.Fatal("device-local copy should exceed intra-server bandwidth")
	}
}
