package partition

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"autopipe/internal/cluster"
	"autopipe/internal/model"
)

func testCost(layers int, bwGbps float64) *CostModel {
	cl := cluster.Testbed(cluster.Gbps(bwGbps))
	m := model.Uniform(layers, 2e9, 50000)
	return NewPipeDreamCost(m, cl, 0, cluster.Gbps(bwGbps))
}

func workerIDs(n int) []int {
	ws := make([]int, n)
	for i := range ws {
		ws[i] = i
	}
	return ws
}

func TestPlanValidate(t *testing.T) {
	p := Plan{
		Stages: []Stage{
			{Start: 0, End: 3, Workers: []int{0, 1}},
			{Start: 3, End: 8, Workers: []int{2}},
		},
		InFlight: 3,
	}
	if err := p.Validate(8, 4); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := p.Clone()
	bad.Stages[1].Start = 4 // gap
	if bad.Validate(8, 4) == nil {
		t.Fatal("gap accepted")
	}
	dup := p.Clone()
	dup.Stages[1].Workers = []int{0} // reuse
	if dup.Validate(8, 4) == nil {
		t.Fatal("duplicate worker accepted")
	}
	short := p.Clone()
	short.Stages[1].End = 7
	if short.Validate(8, 4) == nil {
		t.Fatal("incomplete coverage accepted")
	}
	zero := p.Clone()
	zero.InFlight = 0
	if zero.Validate(8, 4) == nil {
		t.Fatal("zero InFlight accepted")
	}
}

func TestPlanHelpers(t *testing.T) {
	p := Plan{
		Stages: []Stage{
			{Start: 0, End: 3, Workers: []int{0, 1}},
			{Start: 3, End: 8, Workers: []int{2}},
		},
		InFlight: 3,
	}
	if p.WorkerStage(1) != 0 || p.WorkerStage(2) != 1 || p.WorkerStage(9) != -1 {
		t.Fatal("WorkerStage wrong")
	}
	if p.StageOfLayer(2) != 0 || p.StageOfLayer(3) != 1 || p.StageOfLayer(8) != -1 {
		t.Fatal("StageOfLayer wrong")
	}
	if !p.Equal(p.Clone()) {
		t.Fatal("Clone not Equal")
	}
	q := p.Clone()
	q.Stages[0].End = 2
	q.Stages[1].Start = 2
	if p.Equal(q) {
		t.Fatal("Equal missed difference")
	}
	diff := DiffWorkers(p, q)
	if len(diff) != 3 { // all three workers' ranges changed
		t.Fatalf("DiffWorkers = %v", diff)
	}
}

func TestEvenSplit(t *testing.T) {
	p := EvenSplit(10, workerIDs(3))
	if err := p.Validate(10, 3); err != nil {
		t.Fatal(err)
	}
	if p.NumStages() != 3 {
		t.Fatalf("stages = %d", p.NumStages())
	}
	// More workers than layers: capped.
	p2 := EvenSplit(2, workerIDs(5))
	if err := p2.Validate(2, 5); err != nil {
		t.Fatal(err)
	}
	if p2.NumStages() != 2 {
		t.Fatalf("capped stages = %d", p2.NumStages())
	}
}

func TestSingleStageAndModelParallel(t *testing.T) {
	dp := SingleStage(10, workerIDs(4))
	if err := dp.Validate(10, 4); err != nil {
		t.Fatal(err)
	}
	if dp.NumStages() != 1 || dp.Stages[0].Replicas() != 4 {
		t.Fatal("SingleStage shape wrong")
	}
	mp := ModelParallel(10, workerIDs(4))
	if mp.InFlight != 1 {
		t.Fatal("ModelParallel must have a single batch in flight")
	}
}

func TestPipeDreamPlanValid(t *testing.T) {
	for _, m := range []*model.Model{model.AlexNet(), model.VGG16(), model.ResNet50()} {
		cl := cluster.Testbed(cluster.Gbps(25))
		cm := NewPipeDreamCost(m, cl, 0, cluster.Gbps(25))
		p := PipeDream(cm, workerIDs(10))
		if err := p.Validate(m.NumLayers(), 10); err != nil {
			t.Errorf("%s: invalid DP plan: %v (%s)", m.Name, err, p)
		}
	}
}

func TestPipeDreamMatchesExhaustiveSmall(t *testing.T) {
	// Property: DP bottleneck equals exhaustive-search bottleneck on
	// instances small enough to brute-force.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 12; trial++ {
		L := 2 + rng.Intn(4) // 2..5 layers
		N := 1 + rng.Intn(3) // 1..3 workers
		cl := cluster.Testbed(cluster.Gbps(10))
		m := model.Uniform(L, 1e9+rng.Float64()*5e9, int64(1000+rng.Intn(100000)))
		// Perturb layers so the instance is not trivially symmetric.
		for i := range m.Layers {
			m.Layers[i].FLOPs *= 0.5 + rng.Float64()
			m.Layers[i].Params = int64(1e6 * (0.5 + rng.Float64()))
		}
		cm := NewPipeDreamCost(m, cl, 0, cluster.Gbps(10))
		dp := PipeDream(cm, workerIDs(N))
		ex := Exhaustive(cm, workerIDs(N))
		dv, ev := cm.Bottleneck(dp), cm.Bottleneck(ex)
		if dv > ev*(1+1e-9) {
			t.Fatalf("trial %d (L=%d N=%d): DP bottleneck %v worse than exhaustive %v\nDP: %s\nEX: %s",
				trial, L, N, dv, ev, dp, ex)
		}
	}
}

func TestPipeDreamBeatsEvenSplitOnSkewedModel(t *testing.T) {
	cl := cluster.Testbed(cluster.Gbps(25))
	m := model.VGG16() // heavily skewed: conv front, fat FC tail
	cm := NewPipeDreamCost(m, cl, 0, cluster.Gbps(25))
	dp := PipeDream(cm, workerIDs(4))
	even := EvenSplit(m.NumLayers(), workerIDs(4))
	if cm.Bottleneck(dp) > cm.Bottleneck(even) {
		t.Fatalf("DP (%v) worse than even split (%v)", cm.Bottleneck(dp), cm.Bottleneck(even))
	}
}

func TestNOAM(t *testing.T) {
	if noam(4, 1) != 4 || noam(4, 2) != 2 || noam(5, 2) != 3 || noam(3, 0) != 1 {
		t.Fatal("noam formula wrong")
	}
}

func TestCostModelThroughputInvertsBottleneck(t *testing.T) {
	cm := testCost(8, 25)
	p := EvenSplit(8, workerIDs(4))
	b := cm.Bottleneck(p)
	tp := cm.Throughput(p)
	if math.Abs(tp-float64(cm.Model.MiniBatch)/b) > 1e-9 {
		t.Fatal("Throughput != MiniBatch/Bottleneck")
	}
}

func TestRefinedCostSeesContention(t *testing.T) {
	cl := cluster.Testbed(cluster.Gbps(25))
	m := model.AlexNet()
	before := NewRefinedCost(m, cl, workerIDs(10))
	cl.AddCompetingJob()
	after := NewRefinedCost(m, cl, workerIDs(10))
	if after.TotalTime() <= before.TotalTime() {
		t.Fatal("refined cost ignores GPU contention")
	}
	cl.SetExtShareAll(0.5)
	after2 := NewRefinedCost(m, cl, workerIDs(10))
	if after2.Bandwidth >= after.Bandwidth {
		t.Fatal("refined cost ignores bandwidth contention")
	}
	// PipeDream's cost must NOT see contention (profiles exclusive GPU).
	pd := NewPipeDreamCost(m, cl, 0, cluster.Gbps(25))
	if math.Abs(pd.TotalTime()-NewPipeDreamCost(m, cluster.Testbed(cluster.Gbps(25)), 0, cluster.Gbps(25)).TotalTime()) > 1e-12 {
		t.Fatal("PipeDream cost changed under contention")
	}
}

func TestNeighborsChangeAtMostTwoWorkers(t *testing.T) {
	p := Plan{
		Stages: []Stage{
			{Start: 0, End: 4, Workers: []int{0}},
			{Start: 4, End: 9, Workers: []int{1}},
			{Start: 9, End: 16, Workers: []int{2, 3}},
		},
		InFlight: 4,
	}
	if err := p.Validate(16, 4); err != nil {
		t.Fatal(err)
	}
	ns := Neighbors(p)
	if len(ns) == 0 {
		t.Fatal("no neighbours generated")
	}
	for _, q := range ns {
		if err := q.Validate(16, 4); err != nil {
			t.Fatalf("invalid neighbour %s: %v", q, err)
		}
		if d := DiffWorkers(p, q); len(d) > 2 {
			t.Fatalf("neighbour %s changes %d workers (%v)", q, len(d), d)
		}
		if q.Equal(p) {
			t.Fatalf("incumbent returned as neighbour")
		}
	}
}

func TestNeighborsBoundaryCount(t *testing.T) {
	// Two single-replica stages over L layers: boundary can move to any
	// of L-1 positions minus the incumbent.
	p := Plan{
		Stages: []Stage{
			{Start: 0, End: 5, Workers: []int{0}},
			{Start: 5, End: 10, Workers: []int{1}},
		},
		InFlight: 2,
	}
	ns := Neighbors(p)
	if len(ns) != 8 { // boundaries 1..9 minus current 5
		t.Fatalf("boundary neighbours = %d, want 8", len(ns))
	}
}

func TestNeighborsWithMergeValid(t *testing.T) {
	p := Plan{
		Stages: []Stage{
			{Start: 0, End: 4, Workers: []int{0}},
			{Start: 4, End: 9, Workers: []int{1}},
			{Start: 9, End: 16, Workers: []int{2, 3}},
		},
		InFlight: 4,
	}
	ns := NeighborsWithMerge(p)
	foundMerge, foundSplit := false, false
	for _, q := range ns {
		if err := q.Validate(16, 4); err != nil {
			t.Fatalf("invalid merged neighbour %s: %v", q, err)
		}
		if q.NumStages() == 2 {
			foundMerge = true
		}
		if q.NumStages() == 4 {
			foundSplit = true
		}
	}
	if !foundMerge || !foundSplit {
		t.Fatalf("merge=%v split=%v; want both", foundMerge, foundSplit)
	}
}

// Property: every PipeDream plan over random uniform-ish models is valid
// and its bottleneck is no worse than both even-split and single-stage.
func TestQuickPipeDreamDominatesBaselines(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		L := 3 + r.Intn(10)
		N := 1 + r.Intn(6)
		cl := cluster.Testbed(cluster.Gbps(10 + 90*r.Float64()))
		m := model.Uniform(L, 1e9, 10000)
		for i := range m.Layers {
			m.Layers[i].FLOPs *= 0.2 + 2*r.Float64()
			m.Layers[i].Params = int64(1e5 + r.Float64()*1e7)
		}
		cm := NewPipeDreamCost(m, cl, 0, cl.Servers[0].NICBwBps)
		dp := PipeDream(cm, workerIDs(N))
		if dp.Validate(L, N) != nil {
			return false
		}
		even := EvenSplit(L, workerIDs(N))
		single := SingleStage(L, workerIDs(N))
		b := cm.Bottleneck(dp)
		return b <= cm.Bottleneck(even)*(1+1e-9) && b <= cm.Bottleneck(single)*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: neighbours of valid plans are valid.
func TestQuickNeighborsValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		L := 4 + r.Intn(12)
		N := 2 + r.Intn(5)
		cl := cluster.Testbed(cluster.Gbps(25))
		m := model.Uniform(L, 1e9, 10000)
		cm := NewPipeDreamCost(m, cl, 0, cluster.Gbps(25))
		p := PipeDream(cm, workerIDs(N))
		for _, q := range NeighborsWithMerge(p) {
			if q.Validate(L, N) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPipeDreamEmptyInputs(t *testing.T) {
	cm := testCost(4, 10)
	if p := PipeDream(cm, nil); len(p.Stages) != 0 {
		t.Fatal("plan from zero workers should be empty")
	}
}

func TestSelectWorkersPrefersFewerOnSlowNetwork(t *testing.T) {
	// VGG16 on a 1 Gbps fabric: boundaries and syncs dominate, so the
	// best configuration uses fewer than all 10 workers.
	cl := cluster.Testbed(cluster.Gbps(1))
	m := model.VGG16()
	cm := NewPipeDreamCost(m, cl, 0, cluster.Gbps(1))
	plan, k := SelectWorkers(cm, workerIDs(10))
	if err := plan.Validate(m.NumLayers(), 10); err != nil {
		t.Fatal(err)
	}
	if k >= 10 {
		t.Fatalf("slow network still selected %d workers", k)
	}
	// The selected plan must be at least as good as the all-worker plan.
	all := PipeDream(cm, workerIDs(10))
	if cm.Bottleneck(plan) > cm.Bottleneck(all)*(1+1e-9) {
		t.Fatalf("subset plan %v worse than all-worker plan %v",
			cm.Bottleneck(plan), cm.Bottleneck(all))
	}
}

func TestSelectWorkersUsesAllOnFastNetwork(t *testing.T) {
	// ResNet50 at 100 Gbps is compute-bound: more workers help.
	cl := cluster.Testbed(cluster.Gbps(100))
	m := model.ResNet50()
	cm := NewPipeDreamCost(m, cl, 0, cluster.Gbps(100))
	_, k := SelectWorkers(cm, workerIDs(10))
	if k < 8 {
		t.Fatalf("fast network selected only %d workers", k)
	}
}

func TestSelectWorkersSingle(t *testing.T) {
	cl := cluster.Testbed(cluster.Gbps(25))
	m := model.AlexNet()
	cm := NewPipeDreamCost(m, cl, 0, cluster.Gbps(25))
	plan, k := SelectWorkers(cm, []int{3})
	if k != 1 || plan.Validate(m.NumLayers(), 10) != nil {
		t.Fatalf("single-worker selection broken: k=%d", k)
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	// Plans serialise losslessly with encoding/json — operators persist
	// and restore configurations.
	p := Plan{
		Stages: []Stage{
			{Start: 0, End: 3, Workers: []int{0, 1}},
			{Start: 3, End: 8, Workers: []int{2}},
		},
		InFlight: 3,
	}
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	// The snake_case wire names are API surface (shared with the
	// autopiped daemon), not an accident of the Go field names.
	for _, name := range []string{`"stages"`, `"in_flight"`, `"start"`, `"end"`, `"workers"`} {
		if !strings.Contains(string(raw), name) {
			t.Errorf("wire form missing field %s: %s", name, raw)
		}
	}
	var back Plan
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !p.Equal(back) {
		t.Fatalf("round trip changed plan: %s vs %s", p, back)
	}
}

func TestFingerprintMatchesEqual(t *testing.T) {
	base := Plan{InFlight: 3, Stages: []Stage{
		{Start: 0, End: 4, Workers: []int{0, 1}},
		{Start: 4, End: 8, Workers: []int{2}},
	}}
	if got := base.Fingerprint(); got != base.Clone().Fingerprint() {
		t.Fatalf("clone fingerprint differs: %q", got)
	}
	// Every neighbour (a structurally different plan) must fingerprint
	// differently from the incumbent and from each other.
	seen := map[string]Plan{base.Fingerprint(): base}
	for _, q := range append(NeighborsWithMerge(base), InFlightVariants(base, 0)...) {
		fp := q.Fingerprint()
		if prev, dup := seen[fp]; dup && !prev.Equal(q) {
			t.Fatalf("collision: %s and %s both fingerprint %q", prev, q, fp)
		}
		seen[fp] = q
	}
	if len(seen) < 3 {
		t.Fatalf("expected several distinct fingerprints, got %d", len(seen))
	}
	// Worker identity matters even with identical boundaries.
	swapped := base.Clone()
	swapped.Stages[0].Workers = []int{1, 0}
	if swapped.Fingerprint() == base.Fingerprint() {
		t.Fatal("worker order must be part of the fingerprint")
	}
}
