package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"autopipe/internal/cluster"
	"autopipe/internal/model"
)

func twoRackCluster(nicGbps, uplinkGbps float64) *cluster.Cluster {
	return cluster.NewCluster(cluster.Config{
		Servers: 4, GPUsPerServer: 2, GPUType: cluster.P100,
		NICBwBps: cluster.Gbps(nicGbps),
		Racks:    2, RackUplinkBps: cluster.Gbps(uplinkGbps),
	})
}

// rackWorkers groups the cluster's workers by rack.
func rackWorkers(cl *cluster.Cluster) [][]int {
	out := make([][]int, cl.Racks)
	for w := 0; w < cl.NumGPUs(); w++ {
		r := cl.ServerOf(w).Rack
		out[r] = append(out[r], w)
	}
	return out
}

func TestHierarchicalPlanValid(t *testing.T) {
	cl := twoRackCluster(40, 10)
	for _, m := range []*model.Model{model.AlexNet(), model.VGG16(), model.ResNet50()} {
		cm := NewPipeDreamCost(m, cl, 0, cluster.Gbps(40))
		p := PipeDreamHierarchical(cm, rackWorkers(cl), cluster.Gbps(10))
		if err := p.Validate(m.NumLayers(), cl.NumGPUs()); err != nil {
			t.Errorf("%s: %v (%s)", m.Name, err, p)
		}
	}
}

func TestHierarchicalNoCrossRackStage(t *testing.T) {
	// Level-2 planning never replicates a stage across racks: every
	// stage's workers live in one rack.
	cl := twoRackCluster(40, 10)
	m := model.ResNet50()
	cm := NewPipeDreamCost(m, cl, 0, cluster.Gbps(40))
	p := PipeDreamHierarchical(cm, rackWorkers(cl), cluster.Gbps(10))
	for _, s := range p.Stages {
		r := cl.ServerOf(s.Workers[0]).Rack
		for _, w := range s.Workers[1:] {
			if cl.ServerOf(w).Rack != r {
				t.Fatalf("stage %v spans racks", s)
			}
		}
	}
}

func TestHierarchicalSingleRackMatchesFlat(t *testing.T) {
	cl := cluster.Testbed(cluster.Gbps(25))
	m := model.AlexNet()
	cm := NewPipeDreamCost(m, cl, 0, cluster.Gbps(25))
	ws := []int{0, 1, 2, 3}
	flat := PipeDream(cm, ws)
	hier := PipeDreamHierarchical(cm, [][]int{ws}, cluster.Gbps(25))
	if cm.Bottleneck(hier) > cm.Bottleneck(flat)*(1+1e-9) {
		t.Fatalf("single-rack hierarchical (%v) worse than flat (%v)",
			cm.Bottleneck(hier), cm.Bottleneck(flat))
	}
}

func TestHierarchicalEmptyInputs(t *testing.T) {
	cl := twoRackCluster(40, 10)
	cm := NewPipeDreamCost(model.AlexNet(), cl, 0, cluster.Gbps(40))
	if p := PipeDreamHierarchical(cm, nil, cluster.Gbps(10)); len(p.Stages) != 0 {
		t.Fatal("plan from zero racks should be empty")
	}
	if p := PipeDreamHierarchical(cm, [][]int{{}, {}}, cluster.Gbps(10)); len(p.Stages) != 0 {
		t.Fatal("plan from empty racks should be empty")
	}
}

// Property: hierarchical plans are valid for random models and rack
// splits, and more racks than layers degrade gracefully.
func TestQuickHierarchicalValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		L := 2 + r.Intn(12)
		m := model.Uniform(L, 1e9, 10000)
		for i := range m.Layers {
			m.Layers[i].FLOPs *= 0.3 + 1.5*r.Float64()
			m.Layers[i].Params = int64(1e5 + r.Float64()*1e7)
		}
		cl := twoRackCluster(40, 5+35*r.Float64())
		cm := NewPipeDreamCost(m, cl, 0, cluster.Gbps(40))
		p := PipeDreamHierarchical(cm, rackWorkers(cl), cl.RackUplinkBps)
		return p.Validate(L, cl.NumGPUs()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
