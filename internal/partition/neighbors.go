package partition

// Neighbors enumerates the AutoPipe search neighbourhood of a plan
// (paper §4.2 "New worker partition"): candidate partitions that differ
// from the incumbent in at most two workers' tasks, so a switch can run
// without stopping the rest of the pipeline. Two move families:
//
//  1. Boundary shifts between an adjacent pair of single-replica stages
//     (exactly the two involved workers change task). Every feasible new
//     boundary inside the merged range is generated — O(L) per pair,
//     O(L·S) ≤ O(L²) total, matching the paper's complexity claim.
//  2. Replica migration: moving one worker from a stage with ≥2 replicas
//     to an adjacent stage (one worker changes task; the donor and
//     recipient stages only change data-parallel width).
//
// The incumbent's InFlight is preserved except where the input-stage
// width changes, in which case NOAM is recomputed.
func Neighbors(p Plan) []Plan {
	return AppendNeighbors(nil, nil, p)
}

// AppendNeighbors appends the Neighbors enumeration of p to dst, in the
// identical order. When a is non-nil the candidates' stage headers are
// carved from the arena and worker slices the move does not touch alias
// p's own storage — candidates are read-only and valid until the
// arena's next Reset or until p's storage is recycled, whichever comes
// first. The generated plans are Equal either way.
func AppendNeighbors(dst []Plan, a *Arena, p Plan) []Plan {
	// Move family 1: boundary shifts.
	for si := 0; si+1 < len(p.Stages); si++ {
		sa, sb := p.Stages[si], p.Stages[si+1]
		if sa.Replicas() != 1 || sb.Replicas() != 1 {
			continue
		}
		for boundary := sa.Start + 1; boundary < sb.End; boundary++ {
			if boundary == sa.End {
				continue // incumbent
			}
			q := cloneShared(a, p)
			q.Stages[si].End = boundary
			q.Stages[si+1].Start = boundary
			dst = append(dst, q)
		}
	}
	// Move family 2: replica migrations between adjacent stages.
	nWorkers := p.NumWorkers()
	for si := range p.Stages {
		for _, dj := range []int{-1, 1} {
			ti := si + dj
			if ti < 0 || ti >= len(p.Stages) {
				continue
			}
			if p.Stages[si].Replicas() < 2 {
				continue
			}
			q := Plan{Stages: takeStages(a, len(p.Stages))}
			for k, s := range p.Stages {
				var ws []int
				switch k {
				case si: // donor loses its last worker
					ws = takeInts(a, len(s.Workers)-1)
					copy(ws, s.Workers[:len(s.Workers)-1])
				case ti: // recipient gains it at the end
					ws = takeInts(a, len(s.Workers)+1)
					copy(ws, s.Workers)
					ws[len(ws)-1] = p.Stages[si].Workers[len(p.Stages[si].Workers)-1]
				default:
					q.Stages[k] = shareStage(a, s)
					continue
				}
				q.Stages[k] = Stage{Start: s.Start, End: s.End, Workers: ws}
			}
			q.InFlight = noam(nWorkers, q.Stages[0].Replicas())
			dst = append(dst, q)
		}
	}
	return dst
}

// InFlightVariants returns copies of p with the in-flight mini-batch
// count varied around the incumbent (±1, ±2, and the NOAM value for the
// current stage shape). Changing the pipeline depth moves no tasks, so
// these are free switches — but they are part of the configuration the
// paper optimises ("optimal number of on-the-fly mini-batches").
func InFlightVariants(p Plan, maxInFlight int) []Plan {
	return AppendInFlightVariants(nil, nil, p, maxInFlight)
}

// AppendInFlightVariants appends the InFlightVariants enumeration of p
// to dst, in the identical order, carving stage headers from a when
// non-nil (worker slices alias p's — see AppendNeighbors).
func AppendInFlightVariants(dst []Plan, a *Arena, p Plan, maxInFlight int) []Plan {
	if maxInFlight < 1 {
		maxInFlight = 2 * p.NumWorkers()
	}
	candidates := [6]int{
		p.InFlight - 2, p.InFlight - 1, p.InFlight + 1, p.InFlight + 2,
		noam(p.NumWorkers(), p.Stages[0].Replicas()),
		len(p.Stages),
	}
	// Sort the fixed candidate set and emit each admissible value once:
	// the same ascending-unique order the map-based enumeration produced.
	ks := candidates[:]
	for i := 0; i < len(ks); i++ {
		for j := i + 1; j < len(ks); j++ {
			if ks[j] < ks[i] {
				ks[i], ks[j] = ks[j], ks[i]
			}
		}
	}
	prev := 0 // InFlight values are ≥1, so 0 never collides
	for _, k := range ks {
		if k < 1 || k > maxInFlight || k == p.InFlight || k == prev {
			continue
		}
		prev = k
		q := cloneShared(a, p)
		q.InFlight = k
		dst = append(dst, q)
	}
	return dst
}

// NeighborsWithMerge extends Neighbors with stage merges of an adjacent
// single-replica pair (the merged stage keeps both workers as replicas)
// and splits of a two-replica stage into two single-replica stages at
// every interior boundary. Both involve exactly the two affected workers.
// AutoPipe uses the extended neighbourhood when the environment shift is
// large (e.g. bandwidth quadrupled) and plain boundary moves stall.
func NeighborsWithMerge(p Plan) []Plan {
	return AppendNeighborsWithMerge(nil, nil, p)
}

// AppendNeighborsWithMerge appends the NeighborsWithMerge enumeration of
// p to dst, in the identical order, carving candidate storage from a
// when non-nil (untouched stages alias p's worker slices — see
// AppendNeighbors).
func AppendNeighborsWithMerge(dst []Plan, a *Arena, p Plan) []Plan {
	dst = AppendNeighbors(dst, a, p)
	nWorkers := p.NumWorkers()
	// Merges.
	for si := 0; si+1 < len(p.Stages); si++ {
		sa, sb := p.Stages[si], p.Stages[si+1]
		if sa.Replicas() != 1 || sb.Replicas() != 1 {
			continue
		}
		q := Plan{Stages: takeStages(a, len(p.Stages)-1)}
		for k := 0; k < si; k++ {
			q.Stages[k] = shareStage(a, p.Stages[k])
		}
		mw := takeInts(a, len(sa.Workers)+len(sb.Workers))
		copy(mw, sa.Workers)
		copy(mw[len(sa.Workers):], sb.Workers)
		q.Stages[si] = Stage{Start: sa.Start, End: sb.End, Workers: mw}
		for k := si + 2; k < len(p.Stages); k++ {
			q.Stages[k-1] = shareStage(a, p.Stages[k])
		}
		q.InFlight = noam(nWorkers, q.Stages[0].Replicas())
		dst = append(dst, q)
	}
	// Splits.
	for si := range p.Stages {
		s := p.Stages[si]
		if s.Replicas() != 2 {
			continue
		}
		for boundary := s.Start + 1; boundary < s.End; boundary++ {
			q := Plan{Stages: takeStages(a, len(p.Stages)+1)}
			for k := 0; k < si; k++ {
				q.Stages[k] = shareStage(a, p.Stages[k])
			}
			w0 := takeInts(a, 1)
			w0[0] = s.Workers[0]
			w1 := takeInts(a, 1)
			w1[0] = s.Workers[1]
			q.Stages[si] = Stage{Start: s.Start, End: boundary, Workers: w0}
			q.Stages[si+1] = Stage{Start: boundary, End: s.End, Workers: w1}
			for k := si + 1; k < len(p.Stages); k++ {
				q.Stages[k+1] = shareStage(a, p.Stages[k])
			}
			q.InFlight = noam(nWorkers, q.Stages[0].Replicas())
			dst = append(dst, q)
		}
	}
	return dst
}

// copyStage deep-copies one stage, carving the worker slice from a when
// non-nil.
func copyStage(a *Arena, s Stage) Stage {
	ws := takeInts(a, len(s.Workers))
	copy(ws, s.Workers)
	return Stage{Start: s.Start, End: s.End, Workers: ws}
}
