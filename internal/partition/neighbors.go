package partition

// Neighbors enumerates the AutoPipe search neighbourhood of a plan
// (paper §4.2 "New worker partition"): candidate partitions that differ
// from the incumbent in at most two workers' tasks, so a switch can run
// without stopping the rest of the pipeline. Two move families:
//
//  1. Boundary shifts between an adjacent pair of single-replica stages
//     (exactly the two involved workers change task). Every feasible new
//     boundary inside the merged range is generated — O(L) per pair,
//     O(L·S) ≤ O(L²) total, matching the paper's complexity claim.
//  2. Replica migration: moving one worker from a stage with ≥2 replicas
//     to an adjacent stage (one worker changes task; the donor and
//     recipient stages only change data-parallel width).
//
// The incumbent's InFlight is preserved except where the input-stage
// width changes, in which case NOAM is recomputed.
func Neighbors(p Plan) []Plan {
	var out []Plan
	// Move family 1: boundary shifts.
	for si := 0; si+1 < len(p.Stages); si++ {
		a, b := p.Stages[si], p.Stages[si+1]
		if a.Replicas() != 1 || b.Replicas() != 1 {
			continue
		}
		for boundary := a.Start + 1; boundary < b.End; boundary++ {
			if boundary == a.End {
				continue // incumbent
			}
			q := p.Clone()
			q.Stages[si].End = boundary
			q.Stages[si+1].Start = boundary
			out = append(out, q)
		}
	}
	// Move family 2: replica migrations between adjacent stages.
	for si := range p.Stages {
		for _, dj := range []int{-1, 1} {
			ti := si + dj
			if ti < 0 || ti >= len(p.Stages) {
				continue
			}
			if p.Stages[si].Replicas() < 2 {
				continue
			}
			q := p.Clone()
			donor := &q.Stages[si]
			recipient := &q.Stages[ti]
			// Move the last worker of the donor stage.
			w := donor.Workers[len(donor.Workers)-1]
			donor.Workers = donor.Workers[:len(donor.Workers)-1]
			recipient.Workers = append(recipient.Workers, w)
			q.InFlight = noam(len(q.AllWorkers()), q.Stages[0].Replicas())
			out = append(out, q)
		}
	}
	return out
}

// InFlightVariants returns copies of p with the in-flight mini-batch
// count varied around the incumbent (±1, ±2, and the NOAM value for the
// current stage shape). Changing the pipeline depth moves no tasks, so
// these are free switches — but they are part of the configuration the
// paper optimises ("optimal number of on-the-fly mini-batches").
func InFlightVariants(p Plan, maxInFlight int) []Plan {
	if maxInFlight < 1 {
		maxInFlight = 2 * len(p.AllWorkers())
	}
	candidates := map[int]bool{}
	for _, d := range []int{-2, -1, 1, 2} {
		candidates[p.InFlight+d] = true
	}
	candidates[noam(len(p.AllWorkers()), p.Stages[0].Replicas())] = true
	candidates[len(p.Stages)] = true
	var out []Plan
	for k := range candidates {
		if k < 1 || k > maxInFlight || k == p.InFlight {
			continue
		}
		q := p.Clone()
		q.InFlight = k
		out = append(out, q)
	}
	// Deterministic order.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].InFlight < out[i].InFlight {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// NeighborsWithMerge extends Neighbors with stage merges of an adjacent
// single-replica pair (the merged stage keeps both workers as replicas)
// and splits of a two-replica stage into two single-replica stages at
// every interior boundary. Both involve exactly the two affected workers.
// AutoPipe uses the extended neighbourhood when the environment shift is
// large (e.g. bandwidth quadrupled) and plain boundary moves stall.
func NeighborsWithMerge(p Plan) []Plan {
	out := Neighbors(p)
	// Merges.
	for si := 0; si+1 < len(p.Stages); si++ {
		a, b := p.Stages[si], p.Stages[si+1]
		if a.Replicas() != 1 || b.Replicas() != 1 {
			continue
		}
		q := Plan{InFlight: p.InFlight}
		q.Stages = append(q.Stages, p.Stages[:si]...)
		merged := Stage{Start: a.Start, End: b.End, Workers: append(append([]int(nil), a.Workers...), b.Workers...)}
		q.Stages = append(q.Stages, merged)
		q.Stages = append(q.Stages, p.Stages[si+2:]...)
		q = q.Clone()
		q.InFlight = noam(len(q.AllWorkers()), q.Stages[0].Replicas())
		out = append(out, q)
	}
	// Splits.
	for si := range p.Stages {
		s := p.Stages[si]
		if s.Replicas() != 2 {
			continue
		}
		for boundary := s.Start + 1; boundary < s.End; boundary++ {
			q := Plan{InFlight: p.InFlight}
			q.Stages = append(q.Stages, p.Stages[:si]...)
			q.Stages = append(q.Stages,
				Stage{Start: s.Start, End: boundary, Workers: []int{s.Workers[0]}},
				Stage{Start: boundary, End: s.End, Workers: []int{s.Workers[1]}})
			q.Stages = append(q.Stages, p.Stages[si+1:]...)
			q = q.Clone()
			q.InFlight = noam(len(q.AllWorkers()), q.Stages[0].Replicas())
			out = append(out, q)
		}
	}
	return out
}
