package partition

import (
	"math"
)

// PipeDream runs PipeDream's dynamic-programming work partitioner
// (Narayanan et al., SOSP'19 §3.1) against the given cost model and
// worker pool. It returns the plan minimising the bottleneck stage time:
// a contiguous layer split into stages, a replica count per stage, and
// the in-flight mini-batch count NOAM = ⌈N / replicas(stage 0)⌉.
//
// Complexity O(L²·N²); the paper reports seconds-scale runtimes for the
// real system and our Figure 12 bench measures this implementation.
func PipeDream(cm *CostModel, workers []int) Plan {
	L := len(cm.LayerTime)
	N := len(workers)
	if N == 0 || L == 0 {
		return Plan{}
	}
	// best[j][m]: minimal bottleneck using exactly m workers for the
	// first j layers. splitAt[j][m] records (i, mPrime): last stage is
	// layers [i,j) on mPrime workers.
	const inf = math.MaxFloat64
	best := make([][]float64, L+1)
	splitI := make([][]int, L+1)
	splitM := make([][]int, L+1)
	for j := 0; j <= L; j++ {
		best[j] = make([]float64, N+1)
		splitI[j] = make([]int, N+1)
		splitM[j] = make([]int, N+1)
		for m := 0; m <= N; m++ {
			best[j][m] = inf
		}
	}
	best[0][0] = 0
	// Prefix sums to evaluate stage costs in O(1).
	prefT := make([]float64, L+1)
	prefW := make([]int64, L+1)
	for l := 0; l < L; l++ {
		prefT[l+1] = prefT[l] + cm.LayerTime[l]
		prefW[l+1] = prefW[l] + cm.ParamBytes[l]
	}
	stageTime := func(i, j, m int) float64 {
		t := prefT[j] - prefT[i]
		w := prefW[j] - prefW[i]
		sync := 0.0
		if m > 1 {
			sync = 4 * float64(m-1) / float64(m) * float64(w*8) / cm.Bandwidth
		}
		return t/float64(m) + sync
	}
	for j := 1; j <= L; j++ {
		for m := 1; m <= N; m++ {
			for i := 0; i < j; i++ {
				for mp := 1; mp <= m; mp++ {
					prev := best[i][m-mp]
					if prev == inf {
						continue
					}
					cand := prev
					if i > 0 {
						if ct := cm.boundaryCommTime(i - 1); ct > cand {
							cand = ct
						}
					}
					if st := stageTime(i, j, mp); st > cand {
						cand = st
					}
					if cand < best[j][m] {
						best[j][m] = cand
						splitI[j][m] = i
						splitM[j][m] = mp
					}
				}
			}
		}
	}
	// The best plan may use fewer than N workers (adding replicas can
	// only add sync cost for some models).
	bestM, bestVal := 1, inf
	for m := 1; m <= N; m++ {
		if best[L][m] < bestVal {
			bestVal = best[L][m]
			bestM = m
		}
	}
	// Reconstruct stages back to front.
	var rev []Stage
	j, m := L, bestM
	for j > 0 {
		i, mp := splitI[j][m], splitM[j][m]
		rev = append(rev, Stage{Start: i, End: j})
		revLast := &rev[len(rev)-1]
		_ = revLast
		rev[len(rev)-1].Workers = make([]int, mp)
		j, m = i, m-mp
	}
	// Assign concrete worker ids front to back in pool order.
	plan := Plan{}
	for s := len(rev) - 1; s >= 0; s-- {
		plan.Stages = append(plan.Stages, rev[s])
	}
	next := 0
	for si := range plan.Stages {
		ws := plan.Stages[si].Workers
		for k := range ws {
			ws[k] = workers[next]
			next++
		}
	}
	plan.InFlight = noam(len(plan.AllWorkers()), plan.Stages[0].Replicas())
	return plan
}

// noam is PipeDream's optimal in-flight mini-batch count:
// ⌈ #workers / #replicas of the input stage ⌉.
func noam(totalWorkers, inputReplicas int) int {
	if inputReplicas <= 0 {
		return 1
	}
	n := (totalWorkers + inputReplicas - 1) / inputReplicas
	if n < 1 {
		n = 1
	}
	return n
}

// EvenSplit returns the first-category baseline partition (Megatron-LM /
// PipeDream-2BW style): layers divided into len(workers) equal-count
// stages, one worker each. If there are more workers than layers, the
// stage count is capped at the layer count.
func EvenSplit(numLayers int, workers []int) Plan {
	n := len(workers)
	if n > numLayers {
		n = numLayers
	}
	var p Plan
	for s := 0; s < n; s++ {
		lo := s * numLayers / n
		hi := (s + 1) * numLayers / n
		p.Stages = append(p.Stages, Stage{Start: lo, End: hi, Workers: []int{workers[s]}})
	}
	p.InFlight = noam(n, 1)
	return p
}

// SingleStage returns the vanilla data-parallel "plan": every worker
// replicates the whole model (the paper's baseline ML-framework mode).
func SingleStage(numLayers int, workers []int) Plan {
	return Plan{
		Stages:   []Stage{{Start: 0, End: numLayers, Workers: append([]int(nil), workers...)}},
		InFlight: 1,
	}
}

// ModelParallel returns naive model parallelism: EvenSplit but with a
// single mini-batch in flight (Figure 1b).
func ModelParallel(numLayers int, workers []int) Plan {
	p := EvenSplit(numLayers, workers)
	p.InFlight = 1
	return p
}

// Exhaustive enumerates every contiguous partition of numLayers layers
// into stages with every worker allocation (workers assigned in pool
// order) and returns the plan with minimal cost-model bottleneck. It is
// exponential — only for small test instances validating the DP.
func Exhaustive(cm *CostModel, workers []int) Plan {
	L := len(cm.LayerTime)
	N := len(workers)
	bestVal := math.MaxFloat64
	var bestPlan Plan
	// Recurse over stage boundaries and replica counts.
	var rec func(layer, usedWorkers int, stages []Stage)
	rec = func(layer, usedWorkers int, stages []Stage) {
		if layer == L {
			if len(stages) == 0 {
				return
			}
			p := Plan{Stages: append([]Stage(nil), stages...)}
			next := 0
			for i := range p.Stages {
				ws := make([]int, cap(p.Stages[i].Workers))
				copy(ws, workers[next:next+len(ws)])
				p.Stages[i].Workers = ws
				next += len(ws)
			}
			p.InFlight = noam(usedWorkers, len(p.Stages[0].Workers))
			if v := cm.Bottleneck(p); v < bestVal {
				bestVal = v
				bestPlan = p.Clone()
			}
			return
		}
		for end := layer + 1; end <= L; end++ {
			for m := 1; m <= N-usedWorkers; m++ {
				stages = append(stages, Stage{Start: layer, End: end, Workers: make([]int, 0, m)})
				rec(end, usedWorkers+m, stages)
				stages = stages[:len(stages)-1]
			}
		}
	}
	rec(0, 0, nil)
	return bestPlan
}
