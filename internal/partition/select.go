package partition

// Worker-subset selection. Pipeline planners usually use every GPU they
// are given, but on a slow network a communication-heavy model can train
// *faster on fewer workers*: each extra stage adds a boundary transfer
// and each extra replica adds sync volume. SelectWorkers searches over
// subset sizes, preferring locality (consecutive workers share servers
// in the testbed layout), and returns the best plan found.

// SelectWorkers runs the DP for every prefix size k = 1..len(workers)
// of the worker pool (prefixes preserve locality: workers are ordered
// server-major) and returns the plan with the lowest cost-model
// bottleneck, along with the worker count it uses.
func SelectWorkers(cm *CostModel, workers []int) (Plan, int) {
	var best Plan
	bestVal := -1.0
	bestK := 0
	for k := 1; k <= len(workers); k++ {
		p := PipeDream(cm, workers[:k])
		if len(p.Stages) == 0 {
			continue
		}
		v := cm.Bottleneck(p)
		if bestK == 0 || v < bestVal {
			best, bestVal, bestK = p, v, k
		}
	}
	return best, bestK
}
