package partition

import (
	"math"

	"autopipe/internal/cluster"
	"autopipe/internal/model"
)

// CostModel is the analytic throughput model a planner optimises against.
//
// The PipeDream variant (NewPipeDreamCost) deliberately keeps PipeDream's
// simplifications — one exclusive reference GPU, a single uniform
// bandwidth, all-reduce weight sync — because the paper's Observation 2
// is that this model diverges from reality. The refined variant
// (NewRefinedCost) uses the cluster's current contended speeds; it is the
// "re-execute the work partition" oracle of Figures 3–6.
type CostModel struct {
	Model *model.Model
	// LayerTime is per-layer FP+BP seconds for one mini-batch on the
	// reference (or per-current-state averaged) GPU.
	LayerTime []float64
	// ActBytes[l] is the activation volume crossing the boundary after
	// layer l for one mini-batch (forward direction; the backward
	// gradient has the same size).
	ActBytes []int64
	// ParamBytes[l] is the parameter volume of layer l.
	ParamBytes []int64
	// Bandwidth is the single uniform link speed (bits/sec) the model
	// assumes.
	Bandwidth float64
}

// NewPipeDreamCost builds PipeDream's planning model: exclusive-GPU
// compute times for the GPU type of the first worker, uniform bandwidth
// as given (PipeDream profiles once, before training).
func NewPipeDreamCost(m *model.Model, cl *cluster.Cluster, refWorker int, bwBps float64) *CostModel {
	cm := &CostModel{Model: m, Bandwidth: bwBps}
	ref := cl.GPU(refWorker)
	saveJobs := ref.CompetingJobs
	ref.CompetingJobs = 0 // PipeDream profiles an exclusively-used GPU
	for i, l := range m.Layers {
		t := cl.FPTime(l, m.MiniBatch, refWorker) * (1 + cluster.BPComputeFactor)
		cm.LayerTime = append(cm.LayerTime, t)
		cm.ActBytes = append(cm.ActBytes, l.OutputBytes(m.MiniBatch))
		cm.ParamBytes = append(cm.ParamBytes, l.ParamBytes())
		_ = i
	}
	ref.CompetingJobs = saveJobs
	return cm
}

// NewRefinedCost builds the oracle model from the cluster's *current*
// state: compute times averaged over the given workers with their real
// contention, bandwidth as the worst currently-available NIC among them.
func NewRefinedCost(m *model.Model, cl *cluster.Cluster, workers []int) *CostModel {
	cm := &CostModel{Model: m}
	minBw := math.Inf(1)
	for _, w := range workers {
		bw := cl.ServerOf(w).AvailBwBps()
		if bw < minBw {
			minBw = bw
		}
	}
	cm.Bandwidth = minBw
	for _, l := range m.Layers {
		avg := 0.0
		for _, w := range workers {
			avg += cl.FPTime(l, m.MiniBatch, w) * (1 + cluster.BPComputeFactor)
		}
		avg /= float64(len(workers))
		cm.LayerTime = append(cm.LayerTime, avg)
		cm.ActBytes = append(cm.ActBytes, l.OutputBytes(m.MiniBatch))
		cm.ParamBytes = append(cm.ParamBytes, l.ParamBytes())
	}
	return cm
}

// stageComputeTime returns the per-mini-batch time of layers [lo,hi)
// replicated m ways: compute split across replicas plus the all-reduce
// weight-sync cost 4(m−1)/m · |w| / B (PipeDream's formula).
func (c *CostModel) stageComputeTime(lo, hi, m int) float64 {
	var t float64
	var w int64
	for l := lo; l < hi; l++ {
		t += c.LayerTime[l]
		w += c.ParamBytes[l]
	}
	sync := 0.0
	if m > 1 {
		sync = 4 * float64(m-1) / float64(m) * float64(w*8) / c.Bandwidth
	}
	return t/float64(m) + sync
}

// boundaryCommTime returns the per-mini-batch communication time across
// the boundary after layer l (activation forward + gradient backward).
func (c *CostModel) boundaryCommTime(l int) float64 {
	return 2 * float64(c.ActBytes[l]*8) / c.Bandwidth
}

// Bottleneck returns the steady-state per-mini-batch time of a plan: the
// slowest pipeline resource (stage compute+sync, or boundary transfer).
func (c *CostModel) Bottleneck(p Plan) float64 {
	worst := 0.0
	for i, s := range p.Stages {
		t := c.stageComputeTime(s.Start, s.End, s.Replicas())
		if t > worst {
			worst = t
		}
		if i < len(p.Stages)-1 {
			ct := c.boundaryCommTime(s.End - 1)
			if ct > worst {
				worst = ct
			}
		}
	}
	return worst
}

// Throughput returns predicted samples/sec for a plan.
func (c *CostModel) Throughput(p Plan) float64 {
	b := c.Bottleneck(p)
	if b <= 0 {
		return 0
	}
	return float64(c.Model.MiniBatch) / b
}

// TotalTime returns Σ LayerTime (single-GPU per-mini-batch time), the
// DP's base case quantity.
func (c *CostModel) TotalTime() float64 {
	s := 0.0
	for _, t := range c.LayerTime {
		s += t
	}
	return s
}
