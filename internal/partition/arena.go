// Arena-allocated candidate plans.
//
// Every hill-climb round enumerates the O(L²) swap/merge neighbourhood
// of the incumbent and discards it after one scoring pass. Building the
// candidates with Clone costs one Stage-slice plus one worker-slice
// allocation per stage per candidate — ~15k heap allocations per
// OptimizePlan call — and all of it is garbage within the round. An
// Arena is a bump-pointer slab allocator for exactly that lifetime:
// Stage slices and worker slices are carved from reusable slabs, Reset
// recycles everything at once, and steady-state candidate generation
// performs zero heap allocations.
//
// A plan carved from an arena is only valid until the next Reset; a
// caller that keeps a candidate (the round winner) must Clone it out
// first. Arenas are not safe for concurrent use — the search layers own
// one per search and generate candidates single-threaded (scoring, not
// generation, is what fans out).
package partition

// Arena bump-allocates Stage and worker slices for transient candidate
// plans. The zero value is ready to use.
type Arena struct {
	stages stageSlabs
	ints   intSlabs
}

// Reset recycles the arena: plans previously carved from it must no
// longer be used (their storage will be handed out again).
func (a *Arena) Reset() {
	a.stages.reset()
	a.ints.reset()
}

// Clone deep-copies p into the arena and returns it.
func (a *Arena) Clone(p Plan) Plan {
	out := Plan{InFlight: p.InFlight, Stages: a.stages.take(len(p.Stages))}
	for i, s := range p.Stages {
		ws := a.ints.take(len(s.Workers))
		copy(ws, s.Workers)
		out.Stages[i] = Stage{Start: s.Start, End: s.End, Workers: ws}
	}
	return out
}

// cloneInto is the allocator indirection shared by the neighbourhood
// generators: a nil arena falls back to the heap path (Plan.Clone), so
// one generator body serves both the legacy allocating API and the
// arena-backed hot path.
func cloneInto(a *Arena, p Plan) Plan {
	if a == nil {
		return p.Clone()
	}
	return a.Clone(p)
}

// cloneShared copies p's stage headers into the arena while sharing the
// worker slices with p. Candidate families that never touch worker
// assignments (boundary shifts, in-flight variants) are served entirely
// by this: one stage-header copy, zero worker copies. Shared slices are
// read-only, and the candidate dies when either the arena is Reset or
// p's own storage is recycled — whichever comes first. A nil arena
// falls back to the fully-independent heap Clone.
func cloneShared(a *Arena, p Plan) Plan {
	if a == nil {
		return p.Clone()
	}
	out := Plan{InFlight: p.InFlight, Stages: a.stages.take(len(p.Stages))}
	copy(out.Stages, p.Stages)
	return out
}

// shareStage returns s itself on the arena path (aliasing its worker
// slice, same read-only/lifetime contract as cloneShared) and a deep
// copy on the heap path.
func shareStage(a *Arena, s Stage) Stage {
	if a == nil {
		return copyStage(nil, s)
	}
	return s
}

// takeStages carves a stage slice, falling back to the heap for nil a.
func takeStages(a *Arena, n int) []Stage {
	if a == nil {
		return make([]Stage, n)
	}
	return a.stages.take(n)
}

// takeInts carves a worker slice, falling back to the heap for nil a.
func takeInts(a *Arena, n int) []int {
	if a == nil {
		return make([]int, n)
	}
	return a.ints.take(n)
}

// arenaMinSlab is the smallest slab (in elements) allocated on growth.
const arenaMinSlab = 256

// stageSlabs is a bump-pointer allocator over []Stage slabs.
type stageSlabs struct {
	slabs [][]Stage
	slab  int
	off   int
}

func (s *stageSlabs) reset() { s.slab, s.off = 0, 0 }

func (s *stageSlabs) take(n int) []Stage {
	for s.slab < len(s.slabs) {
		sl := s.slabs[s.slab]
		if len(sl)-s.off >= n {
			v := sl[s.off : s.off+n : s.off+n]
			s.off += n
			return v
		}
		s.slab++
		s.off = 0
	}
	size := arenaMinSlab
	if n > size {
		size = n
	}
	if k := len(s.slabs); k > 0 {
		if d := 2 * len(s.slabs[k-1]); d > size {
			size = d
		}
	}
	s.slabs = append(s.slabs, make([]Stage, size))
	s.off = n
	return s.slabs[s.slab][:n:n]
}

// intSlabs is a bump-pointer allocator over []int slabs.
type intSlabs struct {
	slabs [][]int
	slab  int
	off   int
}

func (s *intSlabs) reset() { s.slab, s.off = 0, 0 }

func (s *intSlabs) take(n int) []int {
	for s.slab < len(s.slabs) {
		sl := s.slabs[s.slab]
		if len(sl)-s.off >= n {
			v := sl[s.off : s.off+n : s.off+n]
			s.off += n
			return v
		}
		s.slab++
		s.off = 0
	}
	size := arenaMinSlab
	if n > size {
		size = n
	}
	if k := len(s.slabs); k > 0 {
		if d := 2 * len(s.slabs[k-1]); d > size {
			size = d
		}
	}
	s.slabs = append(s.slabs, make([]int, size))
	s.off = n
	return s.slabs[s.slab][:n:n]
}
