package partition

import (
	"math/rand"
	"testing"
)

// randPlanForArena builds a random valid plan mixing single- and
// multi-replica stages so every move family fires.
func randPlanForArena(rng *rand.Rand) Plan {
	numStages := 2 + rng.Intn(4)
	layersPer := 2 + rng.Intn(5)
	p := Plan{InFlight: 1 + rng.Intn(6)}
	next, worker := 0, 0
	for i := 0; i < numStages; i++ {
		n := 1 + rng.Intn(layersPer)
		reps := 1 + rng.Intn(3)
		ws := make([]int, reps)
		for j := range ws {
			ws[j] = worker
			worker++
		}
		p.Stages = append(p.Stages, Stage{Start: next, End: next + n, Workers: ws})
		next += n
	}
	return p
}

// TestArenaEnumerationMatchesHeap pins the arena-backed generators to
// the allocating API: same candidates, same order, over randomized
// plans and all three enumerations.
func TestArenaEnumerationMatchesHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var a Arena
	for trial := 0; trial < 100; trial++ {
		p := randPlanForArena(rng)
		a.Reset()
		cases := []struct {
			name  string
			heap  []Plan
			arena []Plan
		}{
			{"Neighbors", Neighbors(p), AppendNeighbors(nil, &a, p)},
			{"NeighborsWithMerge", NeighborsWithMerge(p), AppendNeighborsWithMerge(nil, &a, p)},
			{"InFlightVariants", InFlightVariants(p, 0), AppendInFlightVariants(nil, &a, p, 0)},
		}
		for _, c := range cases {
			if len(c.heap) != len(c.arena) {
				t.Fatalf("trial %d %s: %d arena candidates, want %d", trial, c.name, len(c.arena), len(c.heap))
			}
			for i := range c.heap {
				if !c.heap[i].Equal(c.arena[i]) {
					t.Fatalf("trial %d %s[%d]: arena %s, heap %s", trial, c.name, i, c.arena[i], c.heap[i])
				}
			}
		}
	}
}

// TestArenaCandidatesShareOnlyUntouchedWorkers pins the arena sharing
// contract: every candidate owns its stage headers and InFlight
// (mutating them corrupts nothing else), and a worker slice may alias
// the incumbent's storage only when its contents equal that incumbent
// slice — i.e. sharing is confined to worker sets the move left
// untouched, so read-only scoring observes exactly the heap
// enumeration's values.
func TestArenaCandidatesShareOnlyUntouchedWorkers(t *testing.T) {
	p := Plan{InFlight: 2, Stages: []Stage{
		{Start: 0, End: 4, Workers: []int{0}},
		{Start: 4, End: 8, Workers: []int{1, 2}},
	}}
	var a Arena
	cands := AppendNeighborsWithMerge(nil, &a, p)
	cands = AppendInFlightVariants(cands, &a, p, 0)
	want := make([]Plan, len(cands))
	for i := range cands {
		want[i] = cands[i].Clone()
	}
	// Shared worker slices must be content-identical to the incumbent
	// slice they alias.
	for i := range cands {
		for j := range cands[i].Stages {
			ws := cands[i].Stages[j].Workers
			if len(ws) == 0 {
				continue
			}
			for k := range p.Stages {
				iw := p.Stages[k].Workers
				if len(iw) == 0 || &ws[0] != &iw[0] {
					continue
				}
				if len(ws) != len(iw) {
					t.Fatalf("candidate %d stage %d shares a resized worker slice", i, j)
				}
				for n := range ws {
					if ws[n] != iw[n] {
						t.Fatalf("candidate %d stage %d shares a mutated worker slice", i, j)
					}
				}
			}
		}
	}
	// Stage headers and InFlight are private per candidate: scribbling on
	// all of them must corrupt neither the incumbent nor other candidates.
	for i := range cands {
		cands[i].InFlight += 100
		for j := range cands[i].Stages {
			cands[i].Stages[j].Start += 1000
			cands[i].Stages[j].End += 1000
		}
	}
	for i := range cands {
		if cands[i].InFlight != want[i].InFlight+100 {
			t.Fatalf("candidate %d InFlight corrupted by another candidate", i)
		}
		for j := range cands[i].Stages {
			if cands[i].Stages[j].Start != want[i].Stages[j].Start+1000 ||
				cands[i].Stages[j].End != want[i].Stages[j].End+1000 {
				t.Fatalf("candidate %d stage %d header corrupted by another candidate", i, j)
			}
		}
	}
	if !p.Equal(Plan{InFlight: 2, Stages: []Stage{
		{Start: 0, End: 4, Workers: []int{0}},
		{Start: 4, End: 8, Workers: []int{1, 2}},
	}}) {
		t.Fatal("candidate header mutation reached the incumbent plan")
	}
}

// TestArenaZeroAllocs pins steady-state candidate generation at zero
// heap allocations once the slabs have grown (the dst slice is reused).
func TestArenaZeroAllocs(t *testing.T) {
	p := Plan{InFlight: 3, Stages: []Stage{
		{Start: 0, End: 10, Workers: []int{0}},
		{Start: 10, End: 20, Workers: []int{1, 2}},
		{Start: 20, End: 30, Workers: []int{3}},
		{Start: 30, End: 40, Workers: []int{4}},
	}}
	var a Arena
	dst := AppendNeighborsWithMerge(nil, &a, p) // grow slabs and dst
	dst = AppendInFlightVariants(dst, &a, p, 0)
	if n := testing.AllocsPerRun(100, func() {
		a.Reset()
		dst = AppendNeighborsWithMerge(dst[:0], &a, p)
		dst = AppendInFlightVariants(dst, &a, p, 0)
	}); n != 0 {
		t.Fatalf("arena candidate generation allocates %v/op, want 0", n)
	}
}

// TestHash64MatchesEqual: Equal plans hash identically, and plans that
// differ in any single field hash differently (smoke, not a collision
// proof).
func TestHash64MatchesEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 200; trial++ {
		p := randPlanForArena(rng)
		if p.Hash64() != p.Clone().Hash64() {
			t.Fatal("clone hashes differently")
		}
		q := p.Clone()
		q.InFlight++
		if q.Hash64() == p.Hash64() {
			t.Fatalf("InFlight change kept hash: %s vs %s", p, q)
		}
		q = p.Clone()
		q.Stages[rng.Intn(len(q.Stages))].Workers[0] += 1000
		if q.Hash64() == p.Hash64() {
			t.Fatalf("worker change kept hash: %s vs %s", p, q)
		}
	}
	// Field-aliasing guard: shifting a value between adjacent encoded
	// fields must change the hash.
	a := Plan{InFlight: 1, Stages: []Stage{{Start: 0, End: 2, Workers: []int{1, 2}}}}
	b := Plan{InFlight: 1, Stages: []Stage{{Start: 0, End: 2, Workers: []int{2, 1}}}}
	if a.Hash64() == b.Hash64() {
		t.Fatal("worker order ignored by hash")
	}
}

// TestHash64DistinctOverNeighborhood: every plan in a full
// neighbourhood enumeration (all mutually non-Equal by construction)
// hashes to a distinct value.
func TestHash64DistinctOverNeighborhood(t *testing.T) {
	p := EvenSplit(48, []int{0, 1, 2, 3, 4, 5, 6, 7})
	plans := append([]Plan{p}, NeighborsWithMerge(p)...)
	plans = append(plans, InFlightVariants(p, 0)...)
	seen := map[uint64]Plan{}
	for _, q := range plans {
		h := q.Hash64()
		if prev, ok := seen[h]; ok && !prev.Equal(q) {
			t.Fatalf("hash collision between %s and %s", prev, q)
		}
		seen[h] = q
	}
}
