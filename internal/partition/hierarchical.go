package partition

import (
	"math"
	"sort"
)

// Hierarchical planning. PipeDream's published partitioner runs its DP
// recursively over the levels of a hierarchical topology: first split
// the model across the top-level groups (racks), whose interconnect is
// the slow oversubscribed uplink, then split each group's layer range
// across its own workers over the fast local links. The flat planner in
// pipedream.go assumes one uniform bandwidth; this file provides the
// two-level variant for the rack-enabled cluster topology.

// pipeDreamRange runs the flat DP restricted to layers [lo, hi) using
// the given workers, returning the stage list (layer indices are
// absolute). The cost model's bandwidth is used for both sync and
// boundary terms.
func pipeDreamRange(cm *CostModel, workers []int, lo, hi int) []Stage {
	L := hi - lo
	N := len(workers)
	if L <= 0 || N == 0 {
		return nil
	}
	const inf = math.MaxFloat64
	best := make([][]float64, L+1)
	splitI := make([][]int, L+1)
	splitM := make([][]int, L+1)
	for j := 0; j <= L; j++ {
		best[j] = make([]float64, N+1)
		splitI[j] = make([]int, N+1)
		splitM[j] = make([]int, N+1)
		for m := 0; m <= N; m++ {
			best[j][m] = inf
		}
	}
	best[0][0] = 0
	prefT := make([]float64, L+1)
	prefW := make([]int64, L+1)
	for l := 0; l < L; l++ {
		prefT[l+1] = prefT[l] + cm.LayerTime[lo+l]
		prefW[l+1] = prefW[l] + cm.ParamBytes[lo+l]
	}
	stageTime := func(i, j, m int) float64 {
		t := prefT[j] - prefT[i]
		w := prefW[j] - prefW[i]
		sync := 0.0
		if m > 1 {
			sync = 4 * float64(m-1) / float64(m) * float64(w*8) / cm.Bandwidth
		}
		return t/float64(m) + sync
	}
	for j := 1; j <= L; j++ {
		for m := 1; m <= N; m++ {
			for i := 0; i < j; i++ {
				for mp := 1; mp <= m; mp++ {
					prev := best[i][m-mp]
					if prev == inf {
						continue
					}
					cand := prev
					if i > 0 {
						if ct := cm.boundaryCommTime(lo + i - 1); ct > cand {
							cand = ct
						}
					}
					if st := stageTime(i, j, mp); st > cand {
						cand = st
					}
					if cand < best[j][m] {
						best[j][m] = cand
						splitI[j][m] = i
						splitM[j][m] = mp
					}
				}
			}
		}
	}
	bestM, bestVal := 1, inf
	for m := 1; m <= N; m++ {
		if best[L][m] < bestVal {
			bestVal = best[L][m]
			bestM = m
		}
	}
	var rev []Stage
	j, m := L, bestM
	for j > 0 {
		i, mp := splitI[j][m], splitM[j][m]
		rev = append(rev, Stage{Start: lo + i, End: lo + j, Workers: make([]int, mp)})
		j, m = i, m-mp
	}
	var stages []Stage
	for s := len(rev) - 1; s >= 0; s-- {
		stages = append(stages, rev[s])
	}
	next := 0
	for si := range stages {
		ws := stages[si].Workers
		for k := range ws {
			ws[k] = workers[next]
			next++
		}
	}
	return stages
}

// PipeDreamHierarchical runs the two-level DP: the model is first
// chain-partitioned across racks using the inter-rack bandwidth (each
// rack modelled as one aggregate worker of its combined speed), then
// each rack's layer range is partitioned across its own workers with
// the flat DP at intra-rack bandwidth. workersByRack lists each rack's
// workers; racks with no workers are skipped.
func PipeDreamHierarchical(cm *CostModel, workersByRack [][]int, interBwBps float64) Plan {
	var racks [][]int
	for _, ws := range workersByRack {
		if len(ws) > 0 {
			racks = append(racks, append([]int(nil), ws...))
		}
	}
	R := len(racks)
	L := len(cm.LayerTime)
	if R == 0 || L == 0 {
		return Plan{}
	}
	if R == 1 {
		plan := Plan{Stages: pipeDreamRange(cm, racks[0], 0, L)}
		plan.InFlight = noam(len(plan.AllWorkers()), plan.Stages[0].Replicas())
		return plan
	}
	// Level 2: chain-partition layers across racks (no cross-rack
	// replication — gradient sync over the uplink is prohibitive, which
	// is exactly why PipeDream plans hierarchically). Aggregate rack
	// speed: per-layer time divided by rack size (perfect local split —
	// the inner DP refines this).
	prefT := make([]float64, L+1)
	for l := 0; l < L; l++ {
		prefT[l+1] = prefT[l] + cm.LayerTime[l]
	}
	const inf = math.MaxFloat64
	// best[j][r]: minimal bottleneck covering first j layers with the
	// first r racks (each rack gets a contiguous, possibly empty,
	// range — but empty wastes a rack, so ranges are non-empty).
	best := make([][]float64, L+1)
	split := make([][]int, L+1)
	for j := 0; j <= L; j++ {
		best[j] = make([]float64, R+1)
		split[j] = make([]int, R+1)
		for r := 0; r <= R; r++ {
			best[j][r] = inf
		}
	}
	best[0][0] = 0
	for j := 1; j <= L; j++ {
		for r := 1; r <= R && r <= j; r++ {
			for i := r - 1; i < j; i++ {
				prev := best[i][r-1]
				if prev == inf {
					continue
				}
				cand := prev
				if i > 0 {
					ct := 2 * float64(cm.ActBytes[i-1]*8) / interBwBps
					if ct > cand {
						cand = ct
					}
				}
				st := (prefT[j] - prefT[i]) / float64(len(racks[r-1]))
				if st > cand {
					cand = st
				}
				if cand < best[j][r] {
					best[j][r] = cand
					split[j][r] = i
				}
			}
		}
	}
	// Using fewer racks may win when the model is small.
	bestR, bestVal := 1, inf
	for r := 1; r <= R; r++ {
		if best[L][r] < bestVal {
			bestVal = best[L][r]
			bestR = r
		}
	}
	type rng struct{ lo, hi, rack int }
	var ranges []rng
	j := L
	for r := bestR; r >= 1; r-- {
		i := split[j][r]
		ranges = append(ranges, rng{lo: i, hi: j, rack: r - 1})
		j = i
	}
	sort.Slice(ranges, func(a, b int) bool { return ranges[a].lo < ranges[b].lo })
	// Level 1: flat DP within each rack's range.
	var plan Plan
	for _, rg := range ranges {
		plan.Stages = append(plan.Stages, pipeDreamRange(cm, racks[rg.rack], rg.lo, rg.hi)...)
	}
	if len(plan.Stages) == 0 {
		return Plan{}
	}
	plan.InFlight = noam(len(plan.AllWorkers()), plan.Stages[0].Replicas())
	return plan
}
