// Package partition defines the work-partition representation shared by
// the whole system and the planners that produce partitions: PipeDream's
// dynamic-programming planner (the baseline AutoPipe initialises from),
// an even-split planner, an exhaustive planner for small instances (used
// to test DP optimality), and the two-worker-swap neighbourhood AutoPipe
// searches (paper §4.2 "New worker partition").
package partition

import (
	"fmt"
	"sort"
	"strconv"
)

// Stage is a contiguous layer range replicated over a worker set. With
// more than one worker the stage is data-parallel: mini-batches are
// round-robined across replicas and gradients are synchronised.
type Stage struct {
	// Start and End delimit the half-open layer interval [Start, End).
	Start int `json:"start"`
	End   int `json:"end"`
	// Workers are the GPU ids executing this stage.
	Workers []int `json:"workers"`
}

// NumLayers returns the stage's layer count.
func (s Stage) NumLayers() int { return s.End - s.Start }

// Replicas returns the stage's data-parallel width.
func (s Stage) Replicas() int { return len(s.Workers) }

// Plan is a complete work partition: an ordered stage list plus the
// number of in-flight mini-batches that fill the pipeline (PipeDream's
// NOAM, "optimal number of on-the-fly mini-batches").
// Plan serialises losslessly through encoding/json (snake_case field
// names); the wire form is part of the autopiped daemon's API.
type Plan struct {
	Stages   []Stage `json:"stages"`
	InFlight int     `json:"in_flight"`
}

// NumStages returns the pipeline depth.
func (p Plan) NumStages() int { return len(p.Stages) }

// Workers returns all worker ids used by the plan, in stage order.
func (p Plan) AllWorkers() []int {
	var ws []int
	for _, s := range p.Stages {
		ws = append(ws, s.Workers...)
	}
	return ws
}

// NumWorkers returns the total worker count across all stages without
// allocating (unlike len(AllWorkers())).
func (p Plan) NumWorkers() int {
	n := 0
	for _, s := range p.Stages {
		n += len(s.Workers)
	}
	return n
}

// WorkerStage returns the index of the stage running on worker w, or -1.
func (p Plan) WorkerStage(w int) int {
	for i, s := range p.Stages {
		for _, sw := range s.Workers {
			if sw == w {
				return i
			}
		}
	}
	return -1
}

// StageOfLayer returns the index of the stage containing layer l, or -1.
func (p Plan) StageOfLayer(l int) int {
	for i, s := range p.Stages {
		if l >= s.Start && l < s.End {
			return i
		}
	}
	return -1
}

// Validate checks that the plan covers layers [0, L) contiguously, uses
// each worker at most once, has at least one worker per stage, and a
// positive in-flight count.
func (p Plan) Validate(numLayers, numWorkers int) error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("partition: empty plan")
	}
	if p.InFlight <= 0 {
		return fmt.Errorf("partition: non-positive InFlight %d", p.InFlight)
	}
	next := 0
	seen := map[int]bool{}
	for i, s := range p.Stages {
		if s.Start != next {
			return fmt.Errorf("partition: stage %d starts at %d, want %d", i, s.Start, next)
		}
		if s.End <= s.Start {
			return fmt.Errorf("partition: stage %d empty [%d,%d)", i, s.Start, s.End)
		}
		if len(s.Workers) == 0 {
			return fmt.Errorf("partition: stage %d has no workers", i)
		}
		for _, w := range s.Workers {
			if w < 0 || w >= numWorkers {
				return fmt.Errorf("partition: stage %d has invalid worker %d", i, w)
			}
			if seen[w] {
				return fmt.Errorf("partition: worker %d assigned twice", w)
			}
			seen[w] = true
		}
		next = s.End
	}
	if next != numLayers {
		return fmt.Errorf("partition: plan covers %d layers, model has %d", next, numLayers)
	}
	return nil
}

// Clone returns a deep copy of the plan.
func (p Plan) Clone() Plan {
	out := Plan{InFlight: p.InFlight, Stages: make([]Stage, len(p.Stages))}
	for i, s := range p.Stages {
		out.Stages[i] = Stage{Start: s.Start, End: s.End, Workers: append([]int(nil), s.Workers...)}
	}
	return out
}

// Equal reports whether two plans are structurally identical.
func (p Plan) Equal(q Plan) bool {
	if len(p.Stages) != len(q.Stages) || p.InFlight != q.InFlight {
		return false
	}
	for i := range p.Stages {
		a, b := p.Stages[i], q.Stages[i]
		if a.Start != b.Start || a.End != b.End || len(a.Workers) != len(b.Workers) {
			return false
		}
		for j := range a.Workers {
			if a.Workers[j] != b.Workers[j] {
				return false
			}
		}
	}
	return true
}

// Fingerprint returns a compact canonical encoding of the plan, cheap
// to compute and suitable as a memoisation key: two plans have the same
// fingerprint exactly when Equal reports true.
func (p Plan) Fingerprint() string {
	b := make([]byte, 0, 8+12*len(p.Stages))
	b = strconv.AppendInt(b, int64(p.InFlight), 10)
	for _, s := range p.Stages {
		b = append(b, '|')
		b = strconv.AppendInt(b, int64(s.Start), 10)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(s.End), 10)
		for _, w := range s.Workers {
			b = append(b, '@')
			b = strconv.AppendInt(b, int64(w), 10)
		}
	}
	return string(b)
}

// Hash64 returns a 64-bit FNV-1a hash of the plan's canonical encoding
// (InFlight, then each stage's bounds and worker list, with per-field
// separators so adjacent fields cannot alias). Two Equal plans always
// hash identically; the search layers use it as the memo-cache key in
// place of the allocating Fingerprint string.
func (p Plan) Hash64() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	// Word-at-a-time FNV-1a: one xor-multiply per field (the fields are
	// small ints, so byte-splitting buys nothing), then a splitmix64
	// finalizer to spread the entropy the truncated polynomial leaves in
	// the low bits. This sits on the search hot path — every candidate is
	// hashed every round to key the memo cache.
	h := uint64(offset64)
	h = (h ^ uint64(p.InFlight)) * prime64
	for _, s := range p.Stages {
		h = (h ^ uint64(s.Start)) * prime64
		h = (h ^ uint64(s.End)) * prime64
		h = (h ^ uint64(len(s.Workers))) * prime64
		for _, w := range s.Workers {
			h = (h ^ uint64(w)) * prime64
		}
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// String renders the plan compactly, e.g. "[0:12)@{0,1} [12:20)@{2} |3".
func (p Plan) String() string {
	out := ""
	for i, s := range p.Stages {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("[%d:%d)@%v", s.Start, s.End, s.Workers)
	}
	return fmt.Sprintf("%s |%d", out, p.InFlight)
}

// DiffWorkers returns the ids of workers whose assigned layer range
// differs between two plans (the paper's switching constraint: a valid
// AutoPipe step changes at most two workers' tasks).
func DiffWorkers(a, b Plan) []int {
	rangeOf := func(p Plan, w int) (int, int, bool) {
		si := p.WorkerStage(w)
		if si < 0 {
			return 0, 0, false
		}
		return p.Stages[si].Start, p.Stages[si].End, true
	}
	seen := map[int]bool{}
	for _, w := range append(a.AllWorkers(), b.AllWorkers()...) {
		seen[w] = true
	}
	var diff []int
	for w := range seen {
		as, ae, aok := rangeOf(a, w)
		bs, be, bok := rangeOf(b, w)
		if aok != bok || as != bs || ae != be {
			diff = append(diff, w)
		}
	}
	sort.Ints(diff)
	return diff
}
