package autopipe_test

import (
	"context"
	"fmt"

	"autopipe"
)

// ExampleMeasure trains AlexNet for ten mini-batches under PipeDream's
// one-shot partition and reports the simulated progress.
func ExampleMeasure() {
	m := autopipe.AlexNet()
	cl := autopipe.Testbed(autopipe.Gbps(25))
	plan := autopipe.PlanPipeDream(m, cl, autopipe.Workers(4))
	res, err := autopipe.Measure(autopipe.RunConfig{
		Model: m, Cluster: cl, Plan: plan,
		Scheme: autopipe.RingAllReduce, Batches: 10,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("batches=%d samples=%d stages=%d\n", res.Batches, res.Samples, plan.NumStages())
	// Output: batches=10 samples=2560 stages=2
}

// ExamplePlanPipeDream shows the DP partitioner balancing VGG16's skewed
// layer costs: the convolutional front is replicated, the FC tail gets a
// narrow stage.
func ExamplePlanPipeDream() {
	m := autopipe.VGG16()
	cl := autopipe.Testbed(autopipe.Gbps(25))
	plan := autopipe.PlanPipeDream(m, cl, autopipe.Workers(4))
	fmt.Println("stages:", plan.NumStages())
	fmt.Println("valid:", plan.Validate(m.NumLayers(), cl.NumGPUs()) == nil)
	// Output:
	// stages: 2
	// valid: true
}

// ExampleRunJob trains under AutoPipe management while the network
// degrades mid-run; the controller reconfigures instead of limping.
func ExampleRunJob() {
	cl := autopipe.Testbed(autopipe.Gbps(100))
	res, err := autopipe.RunJob(context.Background(), autopipe.JobConfig{
		Model: autopipe.VGG16(), Cluster: cl,
		Workers: autopipe.Workers(4), Scheme: autopipe.RingAllReduce,
		Dynamics:   autopipe.BandwidthSteps([]float64{2}, []float64{5}),
		CheckEvery: 3,
	}, 30)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("batches=%d reconfigured=%v\n", res.Batches, res.Controller.SwitchesApplied > 0)
	// Output: batches=30 reconfigured=true
}

// ExampleDiffWorkers demonstrates the two-worker switching constraint:
// a boundary shift between adjacent stages touches exactly two workers.
func ExampleDiffWorkers() {
	m := autopipe.UniformModel(8, 1e9, 1000)
	a := autopipe.PlanEvenSplit(m, autopipe.Workers(4))
	b := a.Clone()
	b.Stages[0].End = 3
	b.Stages[1].Start = 3
	fmt.Println(autopipe.DiffWorkers(a, b))
	// Output: [0 1]
}
