// Command autopipe-load is the soak/load harness for autopiped: it
// drives open-loop (Poisson) or closed-loop job submissions against one
// or more daemons, records per-request latency in HDR-style histograms,
// samples /metrics for the RSS ceiling and journal fsync telemetry, and
// judges the run against declarative SLO gates — exiting non-zero when
// a gate fails, so CI can use it directly.
//
// Against an already-running control plane:
//
//	autopipe-load -targets http://10.0.0.1:8080 -mode open -rate 500 -duration 2m
//
// Or self-contained — spawn real daemons (a 3-node fleet here), soak
// them, SIGKILL one, and gate on recovery time:
//
//	autopipe-load -spawn 3 -autopiped ./autopiped -duration 1m \
//	    -measure-recovery -slo-max-recovery-sec 10 -json BENCH_daemon.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"autopipe/internal/load"
)

// cliConfig is the parsed flag set; one struct so tests can exercise
// the harness logic without a real flag.CommandLine.
type cliConfig struct {
	targets     []string
	spawn       int
	autopiped   string
	workdir     string
	pool        int
	maxQueue    int
	serialFsync bool
	verbose     bool

	mode        string
	rate        float64
	duration    time.Duration
	concurrency int
	seed        int64
	spec        string
	honorRA     bool

	// Scripted partition (spawned fleets only): isolate the last daemon
	// partitionAt into the load phase, heal after partitionFor, and time
	// heal-to-quorum.
	heartbeat    time.Duration
	partitionAt  time.Duration
	partitionFor time.Duration

	measureRecovery bool
	slo             load.SLO
	jsonPath        string
	note            string
}

func parseFlags(fs *flag.FlagSet, argv []string) (*cliConfig, error) {
	c := &cliConfig{}
	var targets string
	fs.StringVar(&targets, "targets", "", "comma-separated daemon base URLs to load (mutually exclusive with -spawn)")
	fs.IntVar(&c.spawn, "spawn", 0, "spawn this many autopiped daemons (1 = single, >1 = fleet) and load them")
	fs.StringVar(&c.autopiped, "autopiped", "autopiped", "path to the autopiped binary for -spawn")
	fs.StringVar(&c.workdir, "workdir", "", "journal/work directory for spawned daemons (default: temp dir, removed afterwards)")
	fs.IntVar(&c.pool, "pool", 8, "worker-pool size for spawned daemons")
	fs.IntVar(&c.maxQueue, "max-queue", 256, "admission-queue bound for spawned daemons")
	fs.BoolVar(&c.serialFsync, "journal-serial-fsync", false, "spawn daemons with group commit disabled (one fsync per append; benchmark baseline)")
	fs.BoolVar(&c.verbose, "verbose", false, "pass spawned daemons' stderr through")

	fs.StringVar(&c.mode, "mode", "closed", `arrival mode: "open" (Poisson at -rate) or "closed" (-concurrency workers)`)
	fs.Float64Var(&c.rate, "rate", 0, "open-loop mean arrival rate, jobs/sec")
	fs.DurationVar(&c.duration, "duration", 30*time.Second, "how long to drive load")
	fs.IntVar(&c.concurrency, "concurrency", 64, "closed-loop workers / open-loop submitter pool")
	fs.Int64Var(&c.seed, "seed", 1, "arrival-schedule RNG seed")
	fs.StringVar(&c.spec, "spec", "", "JSON job spec to submit (default: a small fast-churn job)")
	fs.BoolVar(&c.honorRA, "honor-retry-after", false, "closed-loop workers sleep the Retry-After hint after a 429")

	fs.DurationVar(&c.heartbeat, "heartbeat-every", 0, "failure-detector period for spawned fleet daemons (0 = daemon default)")
	fs.DurationVar(&c.partitionAt, "partition-at", 0, "this long into the load phase, isolate the last spawned daemon with netfault block rules (0 = off; needs -spawn >= 3)")
	fs.DurationVar(&c.partitionFor, "partition-for", 10*time.Second, "how long the scripted partition holds before healing")

	fs.BoolVar(&c.measureRecovery, "measure-recovery", false, "after the load phase, SIGKILL daemon 0, restart it and time replay-to-healthy (needs -spawn)")
	fs.Float64Var(&c.slo.AdmissionP99Ms, "slo-admission-p99-ms", 0, "gate: p99 admission latency ceiling, ms (0 = off)")
	fs.Float64Var(&c.slo.ShedP99Ms, "slo-shed-p99-ms", 0, "gate: p99 429-response latency ceiling, ms (0 = off)")
	fs.Float64Var(&c.slo.MinAcceptedPerSec, "slo-min-accepted-per-sec", 0, "gate: sustained admission throughput floor (0 = off)")
	fs.Int64Var(&c.slo.MinAccepted, "slo-min-accepted", 0, "gate: absolute accepted-jobs floor (0 = off)")
	fs.Float64Var(&c.slo.MaxErrorRate, "slo-max-error-rate", 0, "gate: errors/submitted ceiling (0 = off)")
	var rssMB int64
	fs.Int64Var(&rssMB, "slo-max-rss-mb", 0, "gate: daemon RSS ceiling via /metrics, MiB (0 = off)")
	fs.Float64Var(&c.slo.MaxRecoverySec, "slo-max-recovery-sec", 0, "gate: post-kill restart-to-healthy ceiling, sec (0 = off)")
	fs.Float64Var(&c.slo.MaxPartitionRecoverySec, "slo-max-partition-recovery-sec", 0, "gate: heal-to-quorum ceiling after the scripted partition, sec (0 = off)")
	fs.BoolVar(&c.slo.RetryAfterWithin, "slo-retry-after-range", false, "gate: every Retry-After hint must be within [1,30]s")
	fs.StringVar(&c.jsonPath, "json", "", "write the JSON report here")
	fs.StringVar(&c.note, "note", "", "free-form note embedded in the report")
	if err := fs.Parse(argv); err != nil {
		return nil, err
	}
	c.slo.MaxRSSBytes = rssMB << 20
	for _, t := range strings.Split(targets, ",") {
		if t = strings.TrimRight(strings.TrimSpace(t), "/"); t != "" {
			c.targets = append(c.targets, t)
		}
	}
	if (len(c.targets) == 0) == (c.spawn == 0) {
		return nil, fmt.Errorf("exactly one of -targets or -spawn is required")
	}
	if c.measureRecovery && c.spawn == 0 {
		return nil, fmt.Errorf("-measure-recovery needs -spawn (the harness must own the process to kill it)")
	}
	if c.partitionAt > 0 && c.spawn < 3 {
		return nil, fmt.Errorf("-partition-at needs -spawn >= 3 (a strict majority must survive the isolation)")
	}
	return c, nil
}

// report is the JSON document emitted for -json (BENCH_daemon.json).
type report struct {
	Name    string       `json:"name"`
	Note    string       `json:"note,omitempty"`
	SLO     load.SLO     `json:"slo"`
	Gates   []load.Gate  `json:"gates,omitempty"`
	Pass    bool         `json:"pass"`
	Serial  bool         `json:"journal_serial_fsync,omitempty"`
	Spawned int          `json:"spawned,omitempty"`
	Result  *load.Result `json:"result"`
}

// daemonProc is one spawned autopiped under harness control.
type daemonProc struct {
	idx  int
	addr string // host:port
	base string // http://host:port
	dir  string // journal dir
	args []string
	cmd  *exec.Cmd
}

func (p *daemonProc) start(c *cliConfig) error {
	cmd := exec.Command(c.autopiped, p.args...)
	if c.verbose {
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("spawning daemon %d: %w", p.idx, err)
	}
	p.cmd = cmd
	return nil
}

func (p *daemonProc) stop() {
	if p.cmd == nil || p.cmd.Process == nil {
		return
	}
	p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		p.cmd.Process.Kill()
		<-done
	}
	p.cmd = nil
}

// freeAddr reserves an ephemeral port and releases it for the daemon to
// bind — the standard small race, fine for a test harness.
func freeAddr() (string, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := lis.Addr().String()
	lis.Close()
	return addr, nil
}

// daemonArgs builds the argv for spawned daemon i; in fleet mode every
// daemon past the first joins through daemon 0's advertise URL.
func daemonArgs(c *cliConfig, i int, addr, dir, seedPeer string) []string {
	args := []string{
		"-addr", addr,
		"-pool", fmt.Sprint(c.pool),
		"-max-queue", fmt.Sprint(c.maxQueue),
		"-journal-dir", dir,
		"-drain-timeout", "2s",
	}
	if c.serialFsync {
		args = append(args, "-journal-serial-fsync")
	}
	if c.spawn > 1 {
		args = append(args, "-node-id", fmt.Sprintf("n%d", i), "-advertise", "http://"+addr)
		if seedPeer != "" {
			args = append(args, "-peers", seedPeer)
		}
		if c.heartbeat > 0 {
			args = append(args, "-heartbeat-every", c.heartbeat.String())
		}
		if c.partitionAt > 0 {
			// Arm the fault injector with no rules; the partition probe
			// steers it over POST /v1/netfault mid-run.
			args = append(args, "-netfault", "on")
		}
	}
	return args
}

func spawnFleet(ctx context.Context, c *cliConfig) ([]*daemonProc, func(), error) {
	workdir := c.workdir
	cleanupDir := func() {}
	if workdir == "" {
		tmp, err := os.MkdirTemp("", "autopipe-load-*")
		if err != nil {
			return nil, nil, err
		}
		workdir = tmp
		cleanupDir = func() { os.RemoveAll(tmp) }
	}
	var procs []*daemonProc
	cleanup := func() {
		for _, p := range procs {
			p.stop()
		}
		cleanupDir()
	}
	seedPeer := ""
	for i := 0; i < c.spawn; i++ {
		addr, err := freeAddr()
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		p := &daemonProc{
			idx:  i,
			addr: addr,
			base: "http://" + addr,
			dir:  filepath.Join(workdir, fmt.Sprintf("n%d", i)),
		}
		p.args = daemonArgs(c, i, addr, p.dir, seedPeer)
		if err := p.start(c); err != nil {
			cleanup()
			return nil, nil, err
		}
		procs = append(procs, p)
		hctx, hcancel := context.WithTimeout(ctx, 30*time.Second)
		_, err = load.WaitHealthy(hctx, nil, p.base)
		hcancel()
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		if i == 0 {
			seedPeer = p.base
		}
	}
	return procs, cleanup, nil
}

// partitionProbe is the scripted-partition outcome merged into Result.
type partitionProbe struct {
	recovery        time.Duration
	fenceRejections int64
	fencedOut       int64
	err             error
}

// clusterViewDoc is the slice of GET /v1/cluster the probe reads.
type clusterViewDoc struct {
	Quorum          bool  `json:"quorum"`
	Minority        bool  `json:"minority"`
	FenceRejections int64 `json:"fence_rejections_total"`
	JobsFencedOut   int64 `json:"jobs_fenced_out_total"`
}

func clusterView(ctx context.Context, client *http.Client, base string) (*clusterViewDoc, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/cluster", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var view clusterViewDoc
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, err
	}
	return &view, nil
}

// scriptPartition isolates the last spawned daemon partitionAt into the
// load phase: the injector only impairs outbound calls, so the victim
// blocks everyone and every survivor blocks the victim — a symmetric
// partition. The inbound control surface is never impaired, which is
// what makes the scripted heal possible. After partitionFor the rules
// are cleared and the probe times heal-to-quorum on the victim, then
// sums fence rejections (stale-owner writes refused) across the fleet.
func scriptPartition(ctx context.Context, c *cliConfig, procs []*daemonProc) partitionProbe {
	client := &http.Client{Timeout: 5 * time.Second}
	victim := procs[len(procs)-1]
	victimID := fmt.Sprintf("n%d", victim.idx)
	post := func(base, body string) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			base+"/v1/netfault", strings.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("netfault POST to %s: %s", base, resp.Status)
		}
		return nil
	}
	select {
	case <-ctx.Done():
		return partitionProbe{err: ctx.Err()}
	case <-time.After(c.partitionAt):
	}
	if err := post(victim.base, fmt.Sprintf(`{"set":[{"src":%q,"dst":"*","block":"reject"}]}`, victimID)); err != nil {
		return partitionProbe{err: err}
	}
	for _, p := range procs[:len(procs)-1] {
		if err := post(p.base, fmt.Sprintf(`{"set":[{"src":"n%d","dst":%q,"block":"reject"}]}`, p.idx, victim.addr)); err != nil {
			return partitionProbe{err: err}
		}
	}
	fmt.Printf("partition: isolated %s (%s) for %s\n", victimID, victim.addr, c.partitionFor)
	select {
	case <-ctx.Done():
		return partitionProbe{err: ctx.Err()}
	case <-time.After(c.partitionFor):
	}
	for _, p := range procs {
		if err := post(p.base, `{"clear":true}`); err != nil {
			return partitionProbe{err: err}
		}
	}
	heal := time.Now()
	// Recovered means the victim reaches a majority again AND minority
	// shedding is lifted — the latter only happens after heal-time
	// anti-entropy fenced out its stale job copies.
	var probe partitionProbe
	deadline := heal.Add(60 * time.Second)
	for {
		view, err := clusterView(ctx, client, victim.base)
		if err == nil && view.Quorum && !view.Minority {
			probe.recovery = time.Since(heal)
			break
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			probe.err = fmt.Errorf("victim %s never regained quorum after heal", victimID)
			return probe
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, p := range procs {
		if view, err := clusterView(ctx, client, p.base); err == nil {
			probe.fenceRejections += view.FenceRejections
			probe.fencedOut += view.JobsFencedOut
		}
	}
	fmt.Printf("partition: healed, %s back in quorum after %.2fs; %d stale write(s) fence-rejected, %d job copy(ies) fenced out fleet-wide\n",
		victimID, probe.recovery.Seconds(), probe.fenceRejections, probe.fencedOut)
	return probe
}

// measureRecovery SIGKILLs daemon 0 (a real crash: no deferred cleanup
// runs), restarts it on the same journal, and times restart-to-healthy
// — journal replay included. That interval is what the recovery SLO
// gates.
func measureRecovery(ctx context.Context, c *cliConfig, p *daemonProc) (time.Duration, error) {
	if p.cmd == nil || p.cmd.Process == nil {
		return 0, fmt.Errorf("daemon %d not running", p.idx)
	}
	p.cmd.Process.Kill()
	p.cmd.Wait()
	p.cmd = nil
	if err := p.start(c); err != nil {
		return 0, err
	}
	hctx, hcancel := context.WithTimeout(ctx, 60*time.Second)
	defer hcancel()
	return load.WaitHealthy(hctx, nil, p.base)
}

func run(ctx context.Context, c *cliConfig) (int, error) {
	targets := c.targets
	var procs []*daemonProc
	if c.spawn > 0 {
		var cleanup func()
		var err error
		procs, cleanup, err = spawnFleet(ctx, c)
		if err != nil {
			return 2, err
		}
		defer cleanup()
		for _, p := range procs {
			targets = append(targets, p.base)
		}
		fmt.Printf("spawned %d daemon(s): %s\n", len(procs), strings.Join(targets, " "))
	}

	cfg := load.Config{
		Targets:         targets,
		Mode:            load.Mode(c.mode),
		Duration:        c.duration,
		Rate:            c.rate,
		Concurrency:     c.concurrency,
		Seed:            c.seed,
		HonorRetryAfter: c.honorRA,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	if c.spec != "" {
		cfg.SpecBody = []byte(c.spec)
	}
	var partCh chan partitionProbe
	if c.partitionAt > 0 {
		partCh = make(chan partitionProbe, 1)
		go func() { partCh <- scriptPartition(ctx, c, procs) }()
	}
	res, err := load.Run(ctx, cfg)
	if err != nil {
		return 2, err
	}
	if partCh != nil {
		probe := <-partCh
		if probe.err != nil {
			return 2, fmt.Errorf("partition probe: %w", probe.err)
		}
		res.PartitionRecoverySec = probe.recovery.Seconds()
		res.FenceRejections = probe.fenceRejections
		res.JobsFencedOut = probe.fencedOut
	}

	if c.measureRecovery {
		rec, err := measureRecovery(ctx, c, procs[0])
		if err != nil {
			return 2, fmt.Errorf("recovery probe: %w", err)
		}
		res.RecoverySec = rec.Seconds()
		fmt.Printf("recovery: daemon 0 killed, restarted, healthy again in %.2fs\n", rec.Seconds())
	}

	gates, pass := c.slo.Evaluate(res)
	rep := &report{
		Name: "daemon_soak", Note: c.note, SLO: c.slo,
		Gates: gates, Pass: pass, Serial: c.serialFsync,
		Spawned: c.spawn, Result: res,
	}
	out, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(out))
	for _, g := range gates {
		fmt.Println(g)
	}
	if c.jsonPath != "" {
		if err := os.WriteFile(c.jsonPath, append(out, '\n'), 0o644); err != nil {
			return 2, err
		}
	}
	if !pass {
		return 1, fmt.Errorf("%d SLO gate(s) failed", countFailed(gates))
	}
	return 0, nil
}

func countFailed(gates []load.Gate) int {
	n := 0
	for _, g := range gates {
		if !g.OK {
			n++
		}
	}
	return n
}

func main() {
	c, err := parseFlags(flag.CommandLine, os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "autopipe-load:", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	code, err := run(ctx, c)
	if err != nil {
		fmt.Fprintln(os.Stderr, "autopipe-load:", err)
	}
	os.Exit(code)
}
