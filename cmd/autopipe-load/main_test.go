package main

import (
	"context"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"autopipe/internal/server"
)

func parse(t *testing.T, args ...string) (*cliConfig, error) {
	t.Helper()
	fs := flag.NewFlagSet("autopipe-load", flag.ContinueOnError)
	fs.SetOutput(nil)
	return parseFlags(fs, args)
}

func TestParseFlags(t *testing.T) {
	if _, err := parse(t); err == nil {
		t.Fatal("neither -targets nor -spawn must refuse")
	}
	if _, err := parse(t, "-targets", "http://a", "-spawn", "2"); err == nil {
		t.Fatal("both -targets and -spawn must refuse")
	}
	if _, err := parse(t, "-targets", "http://a", "-measure-recovery"); err == nil {
		t.Fatal("-measure-recovery without -spawn must refuse")
	}
	c, err := parse(t, "-targets", " http://a/ ,, http://b ", "-slo-max-rss-mb", "256")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.targets) != 2 || c.targets[0] != "http://a" || c.targets[1] != "http://b" {
		t.Fatalf("targets = %v", c.targets)
	}
	if c.slo.MaxRSSBytes != 256<<20 {
		t.Fatalf("rss = %d", c.slo.MaxRSSBytes)
	}
}

func TestDaemonArgs(t *testing.T) {
	c := &cliConfig{spawn: 3, pool: 4, maxQueue: 99, serialFsync: true}
	args := daemonArgs(c, 1, "127.0.0.1:9999", "/tmp/n1", "http://127.0.0.1:8888")
	joined := strings.Join(args, " ")
	for _, want := range []string{
		"-addr 127.0.0.1:9999", "-pool 4", "-max-queue 99", "-journal-dir /tmp/n1",
		"-journal-serial-fsync", "-node-id n1", "-advertise http://127.0.0.1:9999",
		"-peers http://127.0.0.1:8888",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("args missing %q: %s", want, joined)
		}
	}
	// Single-daemon spawn carries no fleet flags.
	c.spawn = 1
	c.serialFsync = false
	joined = strings.Join(daemonArgs(c, 0, "a:1", "/d", ""), " ")
	for _, banned := range []string{"-node-id", "-peers", "-journal-serial-fsync"} {
		if strings.Contains(joined, banned) {
			t.Errorf("single-daemon args carry %q: %s", banned, joined)
		}
	}
}

// TestRunAgainstTargets drives the full CLI path — load, SLO gates,
// JSON report — against a real in-process control plane.
func TestRunAgainstTargets(t *testing.T) {
	reg := server.NewRegistryWithOptions(server.Options{PoolSize: 4, MaxQueue: 64})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		reg.Shutdown(ctx)
	}()
	ts := httptest.NewServer(server.New(reg).Handler())
	defer ts.Close()

	jsonPath := filepath.Join(t.TempDir(), "report.json")
	c, err := parse(t,
		"-targets", ts.URL,
		"-duration", "400ms",
		"-concurrency", "8",
		"-slo-min-accepted", "1",
		"-slo-max-error-rate", "0.01",
		"-slo-retry-after-range",
		"-json", jsonPath,
		"-note", "cli smoke",
	)
	if err != nil {
		t.Fatal(err)
	}
	code, err := run(context.Background(), c)
	if err != nil || code != 0 {
		t.Fatalf("run = %d, %v", code, err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.Result == nil || rep.Result.Accepted < 1 || rep.Note != "cli smoke" {
		t.Fatalf("report: %+v", rep)
	}
	if len(rep.Gates) != 3 {
		t.Fatalf("gates: %+v", rep.Gates)
	}

	// An impossible gate must fail the run with exit code 1.
	c.slo.MinAcceptedPerSec = 1e9
	c.jsonPath = ""
	code, err = run(context.Background(), c)
	if code != 1 || err == nil {
		t.Fatalf("impossible gate: run = %d, %v", code, err)
	}
}
