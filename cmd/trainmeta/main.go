// Command trainmeta performs the offline-training phase of AutoPipe:
// it generates (environment, partition) → speed datasets from the
// simulator, trains the meta-network, generates counterfactual switch
// decisions and trains the RL arbiter, then reports held-out quality.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"autopipe/internal/meta"
	"autopipe/internal/rl"
	"autopipe/internal/stats"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "random seed")
		nSpeed    = flag.Int("speed-samples", 300, "meta-network training samples")
		nDecision = flag.Int("decisions", 120, "arbiter counterfactual decisions")
		epochs    = flag.Int("epochs", 80, "meta-network training epochs")
		outDir    = flag.String("out", "", "directory to write trained weights (metanet.gob, arbiter.gob)")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	fmt.Printf("== Meta-network offline training (%d samples) ==\n", *nSpeed)
	samples := meta.Generate(meta.DatasetConfig{Rng: rng, N: *nSpeed})
	train, test := meta.Split(samples, 0.2, rng)
	net := meta.NewNetwork(rng)
	before := net.Eval(test, nil)
	final := net.Train(train, meta.TrainConfig{
		Epochs: *epochs, BatchSize: 8, Shuffle: rng,
		OnEpoch: func(e int, loss float64) {
			if e%10 == 0 {
				fmt.Printf("  epoch %3d  train loss %.5f\n", e, loss)
			}
		},
	})
	after := net.Eval(test, nil)
	var pred, truth []float64
	for _, s := range test {
		pred = append(pred, net.Predict(s.F))
		truth = append(truth, s.Y)
	}
	fmt.Printf("  final train loss %.5f; held-out MSE %.5f → %.5f\n", final, before, after)
	fmt.Printf("  held-out Spearman rank correlation: %.3f\n", stats.SpearmanRank(pred, truth))

	fmt.Printf("\n== RL arbiter offline training (%d counterfactual decisions) ==\n", *nDecision)
	decisions := rl.GenerateDecisions(rl.ScenarioConfig{Rng: rng, N: *nDecision})
	sw := 0
	for _, d := range decisions {
		if d.Switch {
			sw++
		}
	}
	fmt.Printf("  label balance: %d switch / %d stay\n", sw, len(decisions)-sw)
	arb := rl.NewArbiter(rng)
	loss := arb.TrainSupervised(decisions, 300, 3e-3)
	fmt.Printf("  final BCE loss %.4f, training accuracy %.1f%%\n", loss, arb.Accuracy(decisions)*100)

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "trainmeta:", err)
			os.Exit(1)
		}
		save := func(name string, write func(*os.File) error) {
			f, err := os.Create(filepath.Join(*outDir, name))
			if err == nil {
				err = write(f)
			}
			if err == nil {
				err = f.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "trainmeta:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", filepath.Join(*outDir, name))
		}
		save("metanet.gob", func(f *os.File) error { return net.Save(f) })
		save("arbiter.gob", func(f *os.File) error { return arb.Save(f) })
	}

	fmt.Println("\nDone. In a deployment these weights transfer to per-job")
	fmt.Println("instances (CopyFrom / Load) and adapt online; see internal/autopipe.")
}
