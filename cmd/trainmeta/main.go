// Command trainmeta performs the offline-training phase of AutoPipe:
// it generates (environment, partition) → speed datasets from the
// simulator, trains the meta-network, generates counterfactual switch
// decisions and trains the RL arbiter, then reports held-out quality.
// Ground-truth simulation fans out over -procs goroutines; the datasets
// are bit-identical at any setting. Ctrl-C cancels the run promptly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"autopipe/internal/meta"
	"autopipe/internal/profutil"
	"autopipe/internal/rl"
	"autopipe/internal/stats"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "random seed")
		nSpeed    = flag.Int("speed-samples", 300, "meta-network training samples")
		nDecision = flag.Int("decisions", 120, "arbiter counterfactual decisions")
		epochs    = flag.Int("epochs", 80, "meta-network training epochs")
		procs     = flag.Int("procs", 0, "parallel simulation goroutines (<=0 means GOMAXPROCS)")
		outDir    = flag.String("out", "", "directory to write trained weights (metanet.gob, arbiter.gob)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stopProf, err := profutil.Start(*cpuProf, *memProf)
	fatalIf(err)
	defer func() { fatalIf(stopProf()) }()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rng := rand.New(rand.NewSource(*seed))

	fmt.Printf("== Meta-network offline training (%d samples) ==\n", *nSpeed)
	var gen meta.GenStats
	samples, err := meta.Generate(ctx, meta.DatasetConfig{
		Rng: rng, N: *nSpeed, Procs: *procs, Stats: &gen,
	})
	fatalIf(err)
	fmt.Printf("  generated %d samples (%d attempts) in %.2fs wall, %.2fs aggregate sim (%.2fx parallel speedup)\n",
		len(samples), gen.Attempts, gen.WallSeconds, gen.WorkSeconds, gen.Speedup())
	train, test := meta.Split(samples, 0.2, rng)
	net := meta.NewNetwork(rng)
	before := net.Eval(test, nil)
	final := net.Train(train, meta.TrainConfig{
		Ctx:    ctx,
		Epochs: *epochs, BatchSize: 8, Shuffle: rng,
		OnEpoch: func(e int, loss float64) {
			if e%10 == 0 {
				fmt.Printf("  epoch %3d  train loss %.5f\n", e, loss)
			}
		},
	})
	fatalIf(ctx.Err())
	after := net.Eval(test, nil)
	var pred, truth []float64
	for _, s := range test {
		pred = append(pred, net.Predict(s.F))
		truth = append(truth, s.Y)
	}
	fmt.Printf("  final train loss %.5f; held-out MSE %.5f → %.5f\n", final, before, after)
	fmt.Printf("  held-out Spearman rank correlation: %.3f\n", stats.SpearmanRank(pred, truth))

	fmt.Printf("\n== RL arbiter offline training (%d counterfactual decisions) ==\n", *nDecision)
	t0 := time.Now()
	decisions, err := rl.GenerateDecisions(ctx, rl.ScenarioConfig{
		Rng: rng, N: *nDecision, Procs: *procs,
	})
	fatalIf(err)
	fmt.Printf("  generated %d decisions in %.2fs wall\n", len(decisions), time.Since(t0).Seconds())
	sw := 0
	for _, d := range decisions {
		if d.Switch {
			sw++
		}
	}
	fmt.Printf("  label balance: %d switch / %d stay\n", sw, len(decisions)-sw)
	arb := rl.NewArbiter(rng)
	loss, err := arb.TrainSupervised(ctx, decisions, 300, 3e-3)
	fatalIf(err)
	fmt.Printf("  final BCE loss %.4f, training accuracy %.1f%%\n", loss, arb.Accuracy(decisions)*100)

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "trainmeta:", err)
			os.Exit(1)
		}
		save := func(name string, write func(*os.File) error) {
			f, err := os.Create(filepath.Join(*outDir, name))
			if err == nil {
				err = write(f)
			}
			if err == nil {
				err = f.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "trainmeta:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", filepath.Join(*outDir, name))
		}
		save("metanet.gob", func(f *os.File) error { return net.Save(f) })
		save("arbiter.gob", func(f *os.File) error { return arb.Save(f) })
	}

	fmt.Println("\nDone. In a deployment these weights transfer to per-job")
	fmt.Println("instances (CopyFrom / Load) and adapt online; see internal/autopipe.")
}

func fatalIf(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "trainmeta: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "trainmeta:", err)
	os.Exit(1)
}
