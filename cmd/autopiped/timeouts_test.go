package main

import (
	"context"
	"io"
	"log"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestSlowLorisHeaderDropped: a connection that opens, starts a request
// line and then stalls must be dropped by ReadHeaderTimeout — not hold
// a daemon goroutine and fd forever — while the daemon keeps serving
// well-behaved clients throughout.
func TestSlowLorisHeaderDropped(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + lis.Addr().String()
	runErr := make(chan error, 1)
	go func() {
		cfg := daemonConfig{
			pool: 1, drainTimeout: 5 * time.Second,
			readHeaderTimeout: 200 * time.Millisecond,
			idleTimeout:       time.Second,
		}
		runErr <- run(ctx, lis, cfg, log.New(io.Discard, "", 0))
	}()
	waitHealthy(t, base)

	// The attack: write a partial request line, then stall.
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: x")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	start := time.Now()
	n, err := conn.Read(make([]byte, 1))
	if err == nil || n != 0 {
		t.Fatalf("stalled-header connection got %d bytes (err %v), want server-side close", n, err)
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatalf("server never dropped the stalled connection (waited %s)", time.Since(start))
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled connection dropped only after %s", elapsed)
	}

	// The daemon is unaffected: a real request on a fresh connection
	// still answers.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after slow-loris = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestHTTPServerTimeoutDefaults pins the hardening defaults so a future
// refactor cannot silently reintroduce the unbounded server.
func TestHTTPServerTimeoutDefaults(t *testing.T) {
	srv := newHTTPServer(nil, daemonConfig{})
	if srv.ReadHeaderTimeout != defaultReadHeaderTimeout ||
		srv.ReadTimeout != defaultReadTimeout ||
		srv.IdleTimeout != defaultIdleTimeout {
		t.Fatalf("defaults = %s/%s/%s, want %s/%s/%s",
			srv.ReadHeaderTimeout, srv.ReadTimeout, srv.IdleTimeout,
			defaultReadHeaderTimeout, defaultReadTimeout, defaultIdleTimeout)
	}
	srv = newHTTPServer(nil, daemonConfig{
		readHeaderTimeout: time.Second, readTimeout: 2 * time.Second, idleTimeout: 3 * time.Second,
	})
	if srv.ReadHeaderTimeout != time.Second || srv.ReadTimeout != 2*time.Second || srv.IdleTimeout != 3*time.Second {
		t.Fatalf("explicit timeouts not honoured: %s/%s/%s",
			srv.ReadHeaderTimeout, srv.ReadTimeout, srv.IdleTimeout)
	}
}
