package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"autopipe/internal/netfault"
	"time"
)

// helperEnv flips the test binary into daemon mode: TestMain runs the
// real daemon loop instead of the test suite, so the kill-and-restart
// test can SIGKILL a genuine separate process.
const helperEnv = "AUTOPIPED_TEST_HELPER"

func TestMain(m *testing.M) {
	if os.Getenv(helperEnv) == "1" {
		helperMain()
		return
	}
	os.Exit(m.Run())
}

// helperMain is the subprocess body: listen on an ephemeral port,
// announce it on stdout, serve with a journal until SIGTERM (or until a
// chaos kill_daemon event SIGKILLs the process).
func helperMain() {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	fmt.Printf("ADDR %s\n", lis.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	cfg := daemonConfig{
		pool: 1, drainTimeout: 5 * time.Second,
		journalDir:      os.Getenv("AUTOPIPED_TEST_JOURNAL"),
		checkpointEvery: 25, maxQueue: 64,
		watchdogQuiet: 2 * time.Minute,
	}
	if err := run(ctx, lis, cfg, log.New(os.Stderr, "helper: ", 0)); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
}

// startDaemon launches this test binary as a real autopiped process and
// returns the exec handle plus the base URL it serves on.
func startDaemon(t *testing.T, journalDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), helperEnv+"=1", "AUTOPIPED_TEST_JOURNAL="+journalDir)
	cmd.Stderr = io.Discard
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("daemon subprocess printed no address: %v", sc.Err())
	}
	addr, ok := strings.CutPrefix(sc.Text(), "ADDR ")
	if !ok {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("unexpected daemon banner %q", sc.Text())
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained
	return cmd, "http://" + addr
}

func postJob(t *testing.T, base, body string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var created struct {
		ID string `json:"id"`
	}
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST = %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &created); err != nil || created.ID == "" {
		t.Fatalf("bad create response: %v %s", err, raw)
	}
	return created.ID
}

type jobView struct {
	Status struct {
		State     string `json:"state"`
		Iteration int    `json:"iteration"`
	} `json:"status"`
	Result *struct {
		Batches int `json:"batches"`
	} `json:"result"`
}

func getJob(t *testing.T, base, id string) (jobView, error) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return jobView{}, err
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return jobView{}, err
	}
	return v, nil
}

func waitJobState(t *testing.T, base, id, want string) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		v, err := getJob(t, base, id)
		if err == nil && v.Status.State == want {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s (last: %+v, err %v)", id, want, v, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestKillAndRestartRecovery is the PR's acceptance scenario against
// the real daemon binary: a chaos kill_daemon event SIGKILLs the
// process while one job is running (with checkpoints journaled) and a
// second sits queued. A restarted daemon on the same journal dir must
// resume the running job from its checkpoint, re-queue the queued one,
// and complete both — no job lost.
func TestKillAndRestartRecovery(t *testing.T) {
	journalDir := filepath.Join(t.TempDir(), "journal")
	cmd, base := startDaemon(t, journalDir)

	// ~0.087 virtual s/iteration: the crash lands around iteration 1000,
	// far past the first checkpoint (cadence 25) and well after the
	// queued job's submission below.
	crashID := postJob(t, base, `{"model":"AlexNet","batches":4000,"check_every":3,
		"chaos":[{"kind":"kill_daemon","at":90}]}`)
	deadline := time.Now().Add(60 * time.Second)
	for {
		v, err := getJob(t, base, crashID)
		if err == nil && v.Status.State == "running" && v.Status.Iteration > 100 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("crash job never got going (last %+v, err %v)", v, err)
		}
		time.Sleep(time.Millisecond)
	}
	queuedID := postJob(t, base, `{"model":"uniform","uniform":{"layers":8},"batches":10}`)

	// The daemon SIGKILLs itself at the chaos event.
	err := cmd.Wait()
	if err == nil {
		t.Fatal("daemon exited cleanly, want SIGKILL")
	}
	ws, ok := cmd.ProcessState.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("daemon died with %v, want SIGKILL", err)
	}

	// Restart on the same journal. Both jobs must complete.
	cmd2, base2 := startDaemon(t, journalDir)
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	resumed := waitJobState(t, base2, crashID, "done")
	if resumed.Result == nil || resumed.Result.Batches != 4000 {
		t.Fatalf("resumed job result = %+v, want the full 4000-batch budget", resumed.Result)
	}
	waitJobState(t, base2, queuedID, "done")

	resp, err := http.Get(base2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`autopiped_recovered_jobs_total{kind="resumed"} 1`,
		`autopiped_recovered_jobs_total{kind="requeued"} 1`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestRefusesUnwritableJournalDir: a journal location that cannot be
// created must fail startup with a clear error, not serve a control
// plane whose durability silently doesn't work.
func TestRefusesUnwritableJournalDir(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	cfg := daemonConfig{
		pool: 1, drainTimeout: time.Second,
		// A path through a regular file is unwritable for any uid —
		// chmod-based checks are useless when tests run as root.
		journalDir: filepath.Join(blocker, "journal"),
	}
	err = run(context.Background(), lis, cfg, log.New(io.Discard, "", 0))
	if err == nil || !strings.Contains(err.Error(), "journal dir") {
		t.Fatalf("run with unwritable journal dir = %v, want a clear journal error", err)
	}
}

// TestDaemonLifecycle exercises the real daemon loop end to end: serve
// on a TCP listener, accept a job over HTTP, watch it finish, scrape
// metrics, then deliver a real SIGTERM and require a clean drain.
func TestDaemonLifecycle(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + lis.Addr().String()
	runErr := make(chan error, 1)
	go func() {
		cfg := daemonConfig{
			pool: 2, drainTimeout: 5 * time.Second,
			journalDir: filepath.Join(t.TempDir(), "journal"),
		}
		runErr <- run(ctx, lis, cfg, log.New(io.Discard, "", 0))
	}()

	waitHealthy(t, base)

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"model":"uniform","uniform":{"layers":8},"batches":10}`))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || created.ID == "" {
		t.Fatalf("POST = %d, id %q", resp.StatusCode, created.ID)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		var info struct {
			Status struct {
				State     string `json:"state"`
				Iteration int    `json:"iteration"`
			} `json:"status"`
		}
		resp, err := http.Get(base + "/v1/jobs/" + created.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if info.Status.State == "done" {
			if info.Status.Iteration != 10 {
				t.Fatalf("done with %d iterations", info.Status.Iteration)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", info.Status.State)
		}
		time.Sleep(time.Millisecond)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), fmt.Sprintf("autopiped_job_iterations_total{job=%q} 10", created.ID)) {
		t.Fatalf("metrics missing job sample:\n%s", metrics)
	}
	if !strings.Contains(string(metrics), "autopiped_journal_appends_total") {
		t.Fatal("metrics missing journal telemetry")
	}

	// The real signal: SIGTERM to our own process, caught by the same
	// signal.NotifyContext wiring main uses.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestDaemonClusterMode boots two real daemon loops in fleet mode, has
// the second join via the first, submits through one gateway, and
// checks the cluster surface: ring membership in /v1/cluster, the job
// completing with its hosting node stamped, fleet metrics present, and
// both daemons draining cleanly.
func TestDaemonClusterMode(t *testing.T) {
	type daemon struct {
		base   string
		cancel context.CancelFunc
		done   chan error
	}
	start := func(nodeID string, peers []string) daemon {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		d := daemon{base: "http://" + lis.Addr().String(), cancel: cancel, done: make(chan error, 1)}
		go func() {
			cfg := daemonConfig{
				pool: 2, drainTimeout: 5 * time.Second, maxQueue: 64,
				nodeID: nodeID, advertise: d.base, peers: peers,
				heartbeatEvery: 20 * time.Millisecond,
			}
			d.done <- run(ctx, lis, cfg, log.New(io.Discard, "", 0))
		}()
		waitHealthy(t, d.base)
		return d
	}
	d1 := start("n1", nil)
	d2 := start("n2", []string{d1.base})

	// Both daemons must converge on a two-member ring.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var view struct {
			Ring []string `json:"ring"`
		}
		resp, err := http.Get(d2.base + "/v1/cluster")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err == nil && len(view.Ring) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never converged: ring %v", view.Ring)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A job through either gateway carries the fleet ID scheme and lands
	// on whichever node the ring picked.
	id := postJob(t, d1.base, `{"model":"uniform","uniform":{"layers":8},"batches":10}`)
	if !strings.HasPrefix(id, "job-n1-") {
		t.Fatalf("fleet job id %q, want a job-n1-* gateway id", id)
	}
	waitJobState(t, d2.base, id, "done")

	resp, err := http.Get(d1.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"autopiped_fleet_peers_alive 1", "autopiped_fleet_ring_members 2"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	for _, d := range []daemon{d2, d1} {
		d.cancel()
		select {
		case err := <-d.done:
			if err != nil {
				t.Fatalf("daemon run returned %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}
}

// TestDaemonNetfault boots a cluster-mode daemon with the test-only
// fault injector armed via flags and steers it over HTTP: the initial
// rule from -netfault lands, a POST replaces the rule set, and clear
// heals. Also pins the flag-validation path for a malformed rule.
func TestDaemonNetfault(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + lis.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, lis, daemonConfig{
			pool: 1, drainTimeout: 5 * time.Second, maxQueue: 8,
			nodeID: "n1", advertise: base, heartbeatEvery: 50 * time.Millisecond,
			netfaultSpec: "src=n1,dst=*,latency=1ms", netfaultSeed: 7,
		}, log.New(io.Discard, "", 0))
	}()
	waitHealthy(t, base)

	var state struct {
		Rules []netfault.Rule `json:"rules"`
	}
	getState := func() {
		t.Helper()
		resp, err := http.Get(base + "/v1/netfault")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		state.Rules = nil
		if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
			t.Fatal(err)
		}
	}
	getState()
	if len(state.Rules) != 1 || state.Rules[0].Src != "n1" || state.Rules[0].LatencyMS != 1 {
		t.Fatalf("initial rules %+v, want the -netfault flag's latency rule", state.Rules)
	}

	resp, err := http.Post(base+"/v1/netfault", "application/json",
		strings.NewReader(`{"set":[{"src":"n1","dst":"n2","block":"reject"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	getState()
	if len(state.Rules) != 1 || state.Rules[0].Block != netfault.BlockReject {
		t.Fatalf("rules after set %+v, want one reject rule", state.Rules)
	}

	resp, err = http.Post(base+"/v1/netfault", "application/json", strings.NewReader(`{"clear":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	getState()
	if len(state.Rules) != 0 {
		t.Fatalf("rules after clear %+v, want none", state.Rules)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}

	// A malformed rule must refuse startup, not arm a half-parsed set.
	if _, err := buildNetfault(daemonConfig{nodeID: "n1", netfaultSpec: "src=n1,bogus=1"},
		base, log.New(io.Discard, "", 0)); err == nil {
		t.Fatal("buildNetfault accepted a rule with an unknown key")
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
