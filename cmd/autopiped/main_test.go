package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonLifecycle exercises the real daemon loop end to end: serve
// on a TCP listener, accept a job over HTTP, watch it finish, scrape
// metrics, then deliver a real SIGTERM and require a clean drain.
func TestDaemonLifecycle(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + lis.Addr().String()
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, lis, 2, 5*time.Second, log.New(io.Discard, "", 0))
	}()

	waitHealthy(t, base)

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"model":"uniform","uniform":{"layers":8},"batches":10}`))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || created.ID == "" {
		t.Fatalf("POST = %d, id %q", resp.StatusCode, created.ID)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		var info struct {
			Status struct {
				State     string `json:"state"`
				Iteration int    `json:"iteration"`
			} `json:"status"`
		}
		resp, err := http.Get(base + "/v1/jobs/" + created.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if info.Status.State == "done" {
			if info.Status.Iteration != 10 {
				t.Fatalf("done with %d iterations", info.Status.Iteration)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", info.Status.State)
		}
		time.Sleep(time.Millisecond)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), fmt.Sprintf("autopiped_job_iterations_total{job=%q} 10", created.ID)) {
		t.Fatalf("metrics missing job sample:\n%s", metrics)
	}

	// The real signal: SIGTERM to our own process, caught by the same
	// signal.NotifyContext wiring main uses.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
