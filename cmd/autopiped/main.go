// Command autopiped is the AutoPipe control-plane daemon: it hosts many
// concurrent simulated AutoPipe-managed training jobs on a bounded
// worker pool and serves a JSON REST API plus Prometheus metrics.
//
//	autopiped -addr :8080 -pool 4 -journal-dir /var/lib/autopiped
//
//	curl -X POST localhost:8080/v1/jobs -d '{"model":"ResNet50","batches":50}'
//	curl localhost:8080/v1/jobs/job-0001
//	curl localhost:8080/metrics
//
// With -journal-dir set the daemon is crash-safe: every job's spec,
// state transitions, periodic controller checkpoints and final result
// are fsync'd to an append-only journal, and on startup the registry
// replays it — re-queueing jobs that were queued and resuming jobs that
// were running from their last checkpoint.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops, and
// running jobs get -drain-timeout to finish before being cancelled.
//
// Cluster mode: give each daemon a -node-id and point it at any already
// running peer with -peers, and the daemons federate into one control
// plane — a consistent-hash ring places each job on an owner, any node
// accepts submissions and proxies to the owner, owners replicate their
// journal records to a ring successor, and when a node dies its
// successor adopts the jobs and resumes them from their checkpoints.
//
//	autopiped -addr :8081 -node-id n1 -advertise http://10.0.0.1:8081
//	autopiped -addr :8081 -node-id n2 -advertise http://10.0.0.2:8081 \
//	    -peers http://10.0.0.1:8081
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"autopipe/internal/fleet"
	"autopipe/internal/journal"
	"autopipe/internal/netfault"
	"autopipe/internal/server"
)

// daemonConfig is everything run needs beyond the listener; one struct
// so tests can drive the daemon loop without a flag set.
type daemonConfig struct {
	pool            int
	drainTimeout    time.Duration
	journalDir      string        // "" = ephemeral, no crash safety
	journalSerial   bool          // disable group commit: one fsync per append
	checkpointEvery int           // controller checkpoint cadence (iterations)
	maxQueue        int           // admission-queue bound
	jobTimeout      time.Duration // per-job run deadline (0 = none)
	watchdogQuiet   time.Duration // stuck-job threshold (clamped to [5s, 10m])

	// HTTP hardening: a client that stalls mid-header, trickles a body
	// forever, or parks an idle keep-alive connection must not hold a
	// daemon goroutine/fd indefinitely (0 = the default for each).
	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	idleTimeout       time.Duration

	// Cluster mode (all optional; empty nodeID = classic single daemon).
	nodeID         string        // fleet identity
	advertise      string        // URL peers use to reach this daemon
	peers          []string      // seed peers' advertise URLs
	heartbeatEvery time.Duration // failure-detector period

	// Test-only peer-link fault injection (cluster mode). netfaultSpec
	// holds semicolon-separated rules ("on" = enabled, no initial rules);
	// a non-zero netfaultSeed also enables the injector on its own.
	netfaultSpec string
	netfaultSeed uint64
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		pool         = flag.Int("pool", runtime.GOMAXPROCS(0), "max concurrently simulating jobs")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for running jobs on shutdown")
		journalDir   = flag.String("journal-dir", "", "directory for the crash-safe job journal (empty = ephemeral)")
		serialFsync  = flag.Bool("journal-serial-fsync", false, "disable journal group commit so every append pays its own fsync (benchmark baseline)")
		checkpoint   = flag.Int("checkpoint-every", server.DefaultCheckpointEvery, "controller checkpoint cadence in iterations (0 disables)")
		maxQueue     = flag.Int("max-queue", 256, "max jobs waiting for a pool slot before submissions are shed with 429")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-job wall-clock deadline (0 = none)")
		quiet        = flag.Duration("watchdog-quiet", server.DefaultWatchdogQuiet, "cancel running jobs making no progress for this long (clamped to [5s, 10m], 0 disables)")
		headerTO     = flag.Duration("read-header-timeout", defaultReadHeaderTimeout, "drop connections that stall before finishing their request header")
		readTO       = flag.Duration("read-timeout", defaultReadTimeout, "drop connections that stall while sending a request body")
		idleTO       = flag.Duration("idle-timeout", defaultIdleTimeout, "close keep-alive connections idle this long")
		nodeID       = flag.String("node-id", "", "fleet identity; enables cluster mode (empty = single daemon)")
		advertise    = flag.String("advertise", "", "URL peers use to reach this daemon (default http://<addr>)")
		peers        = flag.String("peers", "", "comma-separated advertise URLs of already-running peers to join")
		heartbeat    = flag.Duration("heartbeat-every", fleet.DefaultHeartbeatEvery, "fleet failure-detector period")
		nfSpec       = flag.String("netfault", "", "TEST ONLY: enable the deterministic peer-link fault injector; semicolon-separated rules like 'src=n1,dst=n2,block=reject' ('on' = no initial rules, steer via POST /v1/netfault)")
		nfSeed       = flag.Uint64("netfault-seed", 0, "TEST ONLY: seed for the fault injector's loss RNG; non-zero also enables the injector with no initial rules")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "autopiped:", err)
		os.Exit(1)
	}
	logger := log.New(os.Stderr, "autopiped: ", log.LstdFlags)
	cfg := daemonConfig{
		pool: *pool, drainTimeout: *drainTimeout,
		journalDir: *journalDir, journalSerial: *serialFsync,
		checkpointEvery: *checkpoint,
		maxQueue:        *maxQueue, jobTimeout: *jobTimeout, watchdogQuiet: *quiet,
		readHeaderTimeout: *headerTO, readTimeout: *readTO, idleTimeout: *idleTO,
		nodeID: *nodeID, advertise: *advertise,
		peers: splitPeers(*peers), heartbeatEvery: *heartbeat,
		netfaultSpec: *nfSpec, netfaultSeed: *nfSeed,
	}
	if cfg.nodeID == "" && (len(cfg.peers) > 0 || cfg.advertise != "") {
		fmt.Fprintln(os.Stderr, "autopiped: -peers/-advertise require -node-id")
		os.Exit(1)
	}
	if cfg.nodeID == "" && (cfg.netfaultSpec != "" || cfg.netfaultSeed != 0) {
		fmt.Fprintln(os.Stderr, "autopiped: -netfault/-netfault-seed require cluster mode (-node-id)")
		os.Exit(1)
	}
	if err := run(ctx, lis, cfg, logger); err != nil {
		fmt.Fprintln(os.Stderr, "autopiped:", err)
		os.Exit(1)
	}
}

// splitPeers parses the -peers flag: comma-separated URLs, blanks
// dropped, trailing slashes trimmed so path joins stay clean.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimRight(strings.TrimSpace(p), "/"); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// buildNetfault constructs the test-only peer-link fault injector when
// the -netfault/-netfault-seed flags ask for one. Rules are
// semicolon-separated ParseRule strings; the literal "on" (or a bare
// non-zero seed) enables the injector with an empty rule set so a
// harness steers it entirely through POST /v1/netfault. Peers are
// addressed by advertised host:port or "*": the daemon only learns peer
// IDs at runtime, so ID-addressed rules resolve for the local node
// alone.
func buildNetfault(cfg daemonConfig, advertise string, logger *log.Logger) (*netfault.Injector, error) {
	if cfg.netfaultSpec == "" && cfg.netfaultSeed == 0 {
		return nil, nil
	}
	seed := cfg.netfaultSeed
	if seed == 0 {
		seed = 1
	}
	inj := netfault.New(seed)
	if u, err := url.Parse(advertise); err == nil && u.Host != "" {
		inj.Bind(cfg.nodeID, u.Host)
	}
	var rules []netfault.Rule
	if spec := cfg.netfaultSpec; spec != "" && spec != "on" {
		for _, part := range strings.Split(spec, ";") {
			if part = strings.TrimSpace(part); part == "" {
				continue
			}
			r, err := netfault.ParseRule(part)
			if err != nil {
				return nil, fmt.Errorf("-netfault rule %q: %w", part, err)
			}
			rules = append(rules, r)
		}
		inj.SetRules(rules...)
	}
	logger.Printf("netfault injector armed (seed %d, %d initial rules) — TEST MODE, peer links may be impaired", seed, len(rules))
	return inj, nil
}

// HTTP hardening defaults: generous for any legitimate client, finite
// for a slow-loris one.
const (
	defaultReadHeaderTimeout = 10 * time.Second
	defaultReadTimeout       = time.Minute
	defaultIdleTimeout       = 2 * time.Minute
)

// newHTTPServer wraps the handler with the daemon's connection
// hygiene. Without these timeouts a client that opens a connection and
// never finishes its header (or trickles its body byte by byte) pins a
// goroutine and file descriptor forever — under the soak harness's
// connection churn that is a slow leak that ends in fd exhaustion.
func newHTTPServer(handler http.Handler, cfg daemonConfig) *http.Server {
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: cfg.readHeaderTimeout,
		ReadTimeout:       cfg.readTimeout,
		IdleTimeout:       cfg.idleTimeout,
	}
	if srv.ReadHeaderTimeout <= 0 {
		srv.ReadHeaderTimeout = defaultReadHeaderTimeout
	}
	if srv.ReadTimeout <= 0 {
		srv.ReadTimeout = defaultReadTimeout
	}
	if srv.IdleTimeout <= 0 {
		srv.IdleTimeout = defaultIdleTimeout
	}
	return srv
}

// clampQuiet bounds the watchdog threshold to sane operational values;
// 0 and below disable the watchdog entirely.
func clampQuiet(d time.Duration) time.Duration {
	switch {
	case d <= 0:
		return -1
	case d < 5*time.Second:
		return 5 * time.Second
	case d > 10*time.Minute:
		return 10 * time.Minute
	}
	return d
}

// openJournal opens (or creates) the journal directory, refusing an
// unwritable location with a clear error rather than serving a control
// plane whose durability silently doesn't work.
func openJournal(dir string, serialFsync bool) (*journal.Journal, []journal.Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal dir %s is not writable: %w", dir, err)
	}
	probe := filepath.Join(dir, ".probe")
	if err := os.WriteFile(probe, []byte("autopiped"), 0o644); err != nil {
		return nil, nil, fmt.Errorf("journal dir %s is not writable: %w", dir, err)
	}
	os.Remove(probe)
	jl, recs, err := journal.Open(dir, journal.Options{NoGroupCommit: serialFsync})
	if err != nil {
		return nil, nil, fmt.Errorf("opening journal in %s: %w", dir, err)
	}
	return jl, recs, nil
}

// run serves the control plane on lis until ctx is cancelled (the
// signal handler in main), then drains: HTTP shutdown first so no new
// jobs arrive, registry drain second. Factored out of main so the
// daemon lifecycle is testable.
func run(ctx context.Context, lis net.Listener, cfg daemonConfig, logger *log.Logger) error {
	opts := server.Options{
		PoolSize:        cfg.pool,
		MaxQueue:        cfg.maxQueue,
		CheckpointEvery: cfg.checkpointEvery,
		JobTimeout:      cfg.jobTimeout,
		WatchdogQuiet:   clampQuiet(cfg.watchdogQuiet),
		// A chaos kill_daemon event is a real crash: the process dies by
		// SIGKILL so nothing — not even deferred cleanup — runs, exactly
		// what the recovery path must withstand.
		DaemonKill: func() {
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		},
	}
	var recs []journal.Record
	if cfg.journalDir != "" {
		jl, replayed, err := openJournal(cfg.journalDir, cfg.journalSerial)
		if err != nil {
			return err
		}
		defer jl.Close()
		opts.Journal = jl
		recs = replayed
		st := jl.Stats()
		if st.TruncatedBytes > 0 || st.DroppedSegments > 0 {
			logger.Printf("journal repaired: %d corrupt tail bytes truncated, %d segments dropped",
				st.TruncatedBytes, st.DroppedSegments)
		}
	}
	// In cluster mode the fleet node wraps the registry (installing its
	// replication hook before any job can emit records) and its handler
	// supersedes the single-node one; otherwise this is the classic
	// standalone daemon.
	var (
		node    *fleet.Node
		reg     *server.Registry
		handler http.Handler
	)
	if cfg.nodeID != "" {
		adv := cfg.advertise
		if adv == "" {
			adv = "http://" + lis.Addr().String()
		}
		inj, err := buildNetfault(cfg, adv, logger)
		if err != nil {
			return err
		}
		node, err = fleet.New(fleet.Config{
			ID:             cfg.nodeID,
			Advertise:      adv,
			Peers:          cfg.peers,
			HeartbeatEvery: cfg.heartbeatEvery,
			Fault:          inj,
			Logf:           logger.Printf,
		}, opts)
		if err != nil {
			return err
		}
		reg = node.Registry()
		handler = node.Handler()
	} else {
		reg = server.NewRegistryWithOptions(opts)
		handler = server.New(reg).Handler()
	}
	if opts.Journal != nil {
		stats, err := reg.Recover(recs)
		if err != nil {
			return fmt.Errorf("journal recovery: %w", err)
		}
		if n := stats.Requeued + stats.Resumed + stats.Restarted + stats.Completed; n > 0 || stats.Skipped > 0 {
			logger.Printf("recovered %d jobs from journal: %d requeued, %d resumed from checkpoint, %d restarted, %d completed (%d records skipped)",
				n, stats.Requeued, stats.Resumed, stats.Restarted, stats.Completed, stats.Skipped)
		}
	}
	srv := newHTTPServer(handler, cfg)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()
	if node != nil {
		// The listener is live, so peers contacted during join can reach
		// us back immediately.
		node.Start()
		logger.Printf("serving on %s as fleet node %q (peers %v, pool %d, queue %d, journal %q)",
			lis.Addr(), cfg.nodeID, cfg.peers, cfg.pool, cfg.maxQueue, cfg.journalDir)
	} else {
		logger.Printf("serving on %s (pool %d, queue %d, journal %q)",
			lis.Addr(), cfg.pool, cfg.maxQueue, cfg.journalDir)
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	logger.Printf("shutting down: draining jobs (timeout %s)", cfg.drainTimeout)

	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := srv.Shutdown(httpCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancelDrain()
	shutdown := reg.Shutdown
	if node != nil {
		// Fleet shutdown hands queued jobs to their new ring owners and
		// announces the leave before draining the local pool.
		shutdown = node.Shutdown
	}
	if err := shutdown(drainCtx); err != nil && !errors.Is(err, context.Canceled) {
		logger.Printf("drain timeout hit, jobs cancelled: %v", err)
	}
	logger.Printf("bye")
	return nil
}
