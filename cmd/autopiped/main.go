// Command autopiped is the AutoPipe control-plane daemon: it hosts many
// concurrent simulated AutoPipe-managed training jobs on a bounded
// worker pool and serves a JSON REST API plus Prometheus metrics.
//
//	autopiped -addr :8080 -pool 4
//
//	curl -X POST localhost:8080/v1/jobs -d '{"model":"ResNet50","batches":50}'
//	curl localhost:8080/v1/jobs/job-0001
//	curl localhost:8080/metrics
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops, and
// running jobs get -drain-timeout to finish before being cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"autopipe/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		pool         = flag.Int("pool", runtime.GOMAXPROCS(0), "max concurrently simulating jobs")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for running jobs on shutdown")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "autopiped:", err)
		os.Exit(1)
	}
	logger := log.New(os.Stderr, "autopiped: ", log.LstdFlags)
	if err := run(ctx, lis, *pool, *drainTimeout, logger); err != nil {
		fmt.Fprintln(os.Stderr, "autopiped:", err)
		os.Exit(1)
	}
}

// run serves the control plane on lis until ctx is cancelled (the
// signal handler in main), then drains: HTTP shutdown first so no new
// jobs arrive, registry drain second. Factored out of main so the
// daemon lifecycle is testable.
func run(ctx context.Context, lis net.Listener, pool int, drainTimeout time.Duration, logger *log.Logger) error {
	reg := server.NewRegistry(pool)
	srv := &http.Server{Handler: server.New(reg).Handler()}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()
	logger.Printf("serving on %s (pool %d)", lis.Addr(), pool)

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	logger.Printf("shutting down: draining jobs (timeout %s)", drainTimeout)

	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := srv.Shutdown(httpCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), drainTimeout)
	defer cancelDrain()
	if err := reg.Shutdown(drainCtx); err != nil && !errors.Is(err, context.Canceled) {
		logger.Printf("drain timeout hit, jobs cancelled: %v", err)
	}
	logger.Printf("bye")
	return nil
}
