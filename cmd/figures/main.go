// Command figures regenerates every table and figure of the paper's
// evaluation from the simulator and prints them to stdout (or writes
// Markdown with -md).
//
//	figures            # all figures
//	figures -fig 8     # only Figure 8
//	figures -md out.md # Markdown dump for EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"autopipe/internal/experiments"
	"autopipe/internal/stats"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "regenerate only this figure (2–13); 0 = all")
		mdPath  = flag.String("md", "", "also write Markdown to this file")
		csvDir  = flag.String("csv", "", "also write one CSV per table into this directory")
		batches = flag.Int("batches", 25, "mini-batches per Figure-8 measurement")
		extras  = flag.Bool("extras", false, "also run the extension studies (ablations, multi-job)")
	)
	flag.Parse()

	var md strings.Builder
	csvIndex := 0
	emit := func(t *stats.Table) {
		fmt.Println(t.String())
		md.WriteString(t.Markdown())
		md.WriteString("\n")
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
			csvIndex++
			name := filepath.Join(*csvDir, fmt.Sprintf("%02d_%s.csv", csvIndex, slug(t.Title)))
			if err := os.WriteFile(name, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
		}
	}
	emitSeries := func(title, x string, ss []stats.Series) {
		fmt.Println(stats.PlotSeries(title, ss, 64, 12))
		emit(experiments.SeriesTable(title, x, ss))
	}
	want := func(n int) bool { return *fig == 0 || *fig == n }

	if want(2) {
		emit(experiments.Figure2())
	}
	if want(3) {
		a, b := experiments.Figure3()
		emit(a)
		emit(b)
	}
	if want(4) {
		a, b := experiments.Figure4()
		emit(a)
		emit(b)
	}
	if want(5) {
		a, b := experiments.Figure5()
		emit(a)
		emit(b)
	}
	if want(6) {
		a, b := experiments.Figure6()
		emit(a)
		emit(b)
	}
	if want(8) {
		for _, t := range experiments.Figure8(*batches) {
			emit(t)
		}
	}
	if want(9) {
		emitSeries("Figure 9 — training under dynamic bandwidth (ResNet50, Ring, PyTorch)",
			"iteration", experiments.Figure9())
	}
	if want(10) {
		emitSeries("Figure 10 — training under dynamic GPUs (ResNet50, Ring, PyTorch)",
			"iteration", experiments.Figure10())
	}
	if want(11) {
		curves := experiments.Figure11(30, 11)
		for _, name := range []string{"ResNet50", "VGG16"} {
			emitSeries(fmt.Sprintf("Figure 11 — accuracy vs time, %s", name),
				"hours", curves[name])
		}
		emit(experiments.Figure11Summary(curves))
	}
	if want(12) {
		emit(experiments.Figure12())
	}
	if want(13) {
		emit(experiments.Figure13())
	}
	if *extras {
		emit(experiments.AblationSwitchMode())
		emit(experiments.AblationPolicy())
		emit(experiments.AblationCheckEvery())
		emit(experiments.AblationNeighborhood())
		emit(experiments.MultiJobTable(10, 20))
		emit(experiments.DynamicConvergenceTable())
		emit(experiments.HeteroTable(*batches))
		emit(experiments.SchedulerChurnTable(*batches, []int64{1, 2, 3}))
		emit(experiments.RackTable(*batches))
		emit(experiments.MetaQualityTable(200, 60, 1))
		emit(experiments.SchemeCrossoverTable(8))
	}

	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(md.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote Markdown to %s\n", *mdPath)
	}
}

// slug reduces a table title to a safe file-name fragment.
func slug(title string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '/':
			b.WriteByte('_')
		}
		if b.Len() >= 48 {
			break
		}
	}
	return strings.Trim(b.String(), "_")
}
