// Command autopipe-sim runs one configurable training scenario on the
// simulated shared GPU cluster and reports throughput, utilization and
// controller activity.
//
// Examples:
//
//	autopipe-sim -model ResNet50 -bw 25 -batches 50
//	autopipe-sim -model VGG16 -system pipedream -scheme PS -jobs 2
//	autopipe-sim -model AlexNet -system autopipe -trace bw:2:5 -trace job:4
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"autopipe"
	"autopipe/internal/profutil"
	"autopipe/internal/server"
	"autopipe/internal/trace"
)

type traceFlags []string

func (t *traceFlags) String() string { return strings.Join(*t, ",") }
func (t *traceFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	var (
		modelName = flag.String("model", "ResNet50", "model: ResNet50|VGG16|AlexNet|BERT48")
		bwGbps    = flag.Float64("bw", 25, "NIC bandwidth in Gbps")
		batches   = flag.Int("batches", 50, "mini-batches to train")
		system    = flag.String("system", "autopipe", "system: baseline|pipedream|autopipe")
		scheme    = flag.String("scheme", "Ring", "sync scheme: PS|Ring")
		workers   = flag.Int("workers", 10, "workers (GPUs) used by the job")
		jobs      = flag.Int("jobs", 0, "competing jobs sharing every GPU")
		procs     = flag.Int("procs", 0, "parallel candidate-scoring goroutines (<=0 means GOMAXPROCS)")
		verbose   = flag.Bool("v", false, "print per-worker utilization")
		compare   = flag.Bool("compare", false, "run all three systems and print a comparison")
		jsonOut   = flag.Bool("json", false, "emit the run as one JSON document on stdout (daemon-API serialisation)")
		oracleBw  = flag.Bool("oracle-bw", false, "profiler reads ground-truth bandwidth instead of estimating from flow completions (system=autopipe)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	var traces traceFlags
	flag.Var(&traces, "trace", "dynamic event, repeatable: bw:<t>:<gbps> | job:<t> | jobend:<t>")
	var chaosSpecs traceFlags
	flag.Var(&chaosSpecs, "chaos", "fault event (system=autopipe only), repeatable: "+
		"kill:<t>:<worker> | killonflow:<substr> | stall:<t>:<substr> | drop:<t>:<substr> | flap:<t>:<gbps>:<holdsec>")
	flag.Parse()

	if *jsonOut && *compare {
		fatalIf(fmt.Errorf("-json and -compare are mutually exclusive"))
	}
	stopProf, err := profutil.Start(*cpuProf, *memProf)
	fatalIf(err)
	defer func() { fatalIf(stopProf()) }()
	m, err := autopipe.ModelByName(*modelName)
	fatalIf(err)
	cl := autopipe.Testbed(autopipe.Gbps(*bwGbps))
	for i := 0; i < *jobs; i++ {
		cl.AddCompetingJob()
	}
	sc, err := parseScheme(*scheme)
	fatalIf(err)
	dyn, err := parseTraces(traces)
	fatalIf(err)
	chaosSpec, err := parseChaos(chaosSpecs)
	fatalIf(err)
	if chaosSpec != nil && (strings.ToLower(*system) != "autopipe" || *compare) {
		fatalIf(fmt.Errorf("-chaos requires -system autopipe (without -compare)"))
	}

	if !*jsonOut {
		fmt.Printf("AutoPipe simulator — %s on %d×P100 @%gGbps, scheme=%s, system=%s\n",
			m.Name, *workers, *bwGbps, *scheme, *system)
		fmt.Printf("  layers=%d params=%.1fM mini-batch=%d\n",
			m.NumLayers(), float64(m.TotalParams())/1e6, m.MiniBatch)
	}

	if *compare {
		runComparison(m, *bwGbps, *jobs, sc, dyn, *workers, *batches)
		return
	}

	sys := strings.ToLower(*system)
	rep := server.RunReport{Model: m.Name, System: sys, Scheme: *scheme, Workers: *workers}
	switch sys {
	case "baseline", "pipedream":
		plan := autopipe.PlanDataParallel(m, autopipe.Workers(*workers))
		if sys == "pipedream" {
			plan = autopipe.PlanPipeDream(m, cl, autopipe.Workers(*workers))
		}
		res, err := autopipe.Measure(autopipe.RunConfig{
			Model: m, Cluster: cl, Plan: plan,
			Scheme: sc, Batches: *batches, Dynamics: dyn,
		})
		fatalIf(err)
		rep.Result = res
		rep.FinalPlan = &plan
		if *jsonOut {
			emitJSON(rep)
			return
		}
		report(res, *verbose)
	case "autopipe":
		t0 := time.Now()
		res, err := autopipe.RunJob(context.Background(), autopipe.JobConfig{
			Model: m, Cluster: cl, Workers: autopipe.Workers(*workers),
			Scheme: sc, Dynamics: dyn, Procs: *procs, Chaos: chaosSpec,
			OracleBandwidth: *oracleBw,
		}, *batches)
		elapsed := time.Since(t0)
		fatalIf(err)
		rep.Result = res.Result
		rep.Controller = &res.Controller
		rep.FinalPlan = &res.FinalPlan
		rep.Decisions = res.Decisions
		if *jsonOut {
			emitJSON(rep)
			return
		}
		report(res.Result, *verbose)
		st := res.Controller
		fmt.Printf("controller: %d decisions, %d switches applied, %.1fms decision time, %d resource changes\n",
			st.Decisions, st.SwitchesApplied, st.DecisionSeconds*1e3, st.ResourceChanges)
		fmt.Printf("search: %d candidates scored, %d cache hits, %.1fms search time, %.2fx parallel speedup\n",
			st.CandidatesScored, st.SearchCacheHits, st.SearchSeconds*1e3, searchSpeedup(st))
		if st.Evictions+st.AbortedSwitches+st.MigrationRetries+st.QueuedEvictions > 0 {
			fmt.Printf("faults: %d evictions, %d aborted switches, %d migration retries, %d queued evictions\n",
				st.Evictions, st.AbortedSwitches, st.MigrationRetries, st.QueuedEvictions)
		}
		fmt.Printf("wall clock: %.2fs real for %.2fs virtual\n", elapsed.Seconds(), res.WallTime)
		fmt.Printf("final plan: %s\n", res.FinalPlan)
		if *verbose {
			n := len(res.DecisionLog)
			if n > 10 {
				res.DecisionLog = res.DecisionLog[n-10:]
			}
			for _, line := range res.DecisionLog {
				fmt.Println("  decision:", line)
			}
		}
	default:
		fatalIf(fmt.Errorf("unknown system %q", *system))
	}
}

// emitJSON writes the report as one indented JSON document on stdout.
func emitJSON(rep server.RunReport) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	fatalIf(enc.Encode(rep))
}

// runComparison measures Baseline, PipeDream and AutoPipe on identical
// fresh clusters and prints one line each.
func runComparison(m *autopipe.Model, bwGbps float64, jobs int, sc autopipe.SyncScheme, dyn autopipe.Trace, workers, batches int) {
	mkCluster := func() *autopipe.Cluster {
		cl := autopipe.Testbed(autopipe.Gbps(bwGbps))
		for i := 0; i < jobs; i++ {
			cl.AddCompetingJob()
		}
		return cl
	}
	fmt.Printf("%-12s %12s %12s\n", "system", "samples/s", "wall time")
	for _, name := range []string{"baseline", "pipedream", "autopipe"} {
		var tp, wall float64
		switch name {
		case "baseline":
			cl := mkCluster()
			res, err := autopipe.Measure(autopipe.RunConfig{
				Model: m, Cluster: cl, Plan: autopipe.PlanDataParallel(m, autopipe.Workers(workers)),
				Scheme: sc, Batches: batches, Dynamics: dyn,
			})
			fatalIf(err)
			tp, wall = res.Throughput, res.WallTime
		case "pipedream":
			cl := mkCluster()
			res, err := autopipe.Measure(autopipe.RunConfig{
				Model: m, Cluster: cl, Plan: autopipe.PlanPipeDream(m, cl, autopipe.Workers(workers)),
				Scheme: sc, Batches: batches, Dynamics: dyn,
			})
			fatalIf(err)
			tp, wall = res.Throughput, res.WallTime
		default:
			res, err := autopipe.RunJob(context.Background(), autopipe.JobConfig{
				Model: m, Cluster: mkCluster(), Workers: autopipe.Workers(workers),
				Scheme: sc, Dynamics: dyn,
			}, batches)
			fatalIf(err)
			tp, wall = res.Throughput, res.WallTime
		}
		fmt.Printf("%-12s %12.1f %11.2fs\n", name, tp, wall)
	}
}

// searchSpeedup estimates the realised parallel speedup of candidate
// scoring: aggregate per-candidate predictor time over elapsed search
// time (1.0 means effectively serial).
func searchSpeedup(st autopipe.ControllerStats) float64 {
	if st.SearchSeconds <= 0 {
		return 0
	}
	return st.ScoreSeconds / st.SearchSeconds
}

func report(res autopipe.Result, verbose bool) {
	fmt.Printf("throughput: %.1f samples/sec (%d batches in %.2fs virtual, startup %.2fs)\n",
		res.Throughput, res.Batches, res.WallTime, res.StartupTime)
	if verbose {
		var ids []int
		for w := range res.Utilization {
			ids = append(ids, w)
		}
		sort.Ints(ids)
		for _, w := range ids {
			fmt.Printf("  worker %2d utilization %5.1f%%\n", w, res.Utilization[w]*100)
		}
	}
}

func parseScheme(s string) (autopipe.SyncScheme, error) {
	switch strings.ToLower(s) {
	case "ps":
		return autopipe.ParameterServer, nil
	case "ring":
		return autopipe.RingAllReduce, nil
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

func parseTraces(specs []string) (autopipe.Trace, error) {
	var tr autopipe.Trace
	for _, s := range specs {
		parts := strings.Split(s, ":")
		switch parts[0] {
		case "bw":
			if len(parts) != 3 {
				return nil, fmt.Errorf("bad trace %q, want bw:<t>:<gbps>", s)
			}
			at, err1 := strconv.ParseFloat(parts[1], 64)
			g, err2 := strconv.ParseFloat(parts[2], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("bad trace %q", s)
			}
			tr = append(tr, autopipe.TraceEvent{At: at, Kind: trace.SetBandwidth, Value: autopipe.Gbps(g)})
		case "job":
			at, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return nil, fmt.Errorf("bad trace %q", s)
			}
			tr = append(tr, autopipe.TraceEvent{At: at, Kind: trace.AddJob})
		case "jobend":
			at, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return nil, fmt.Errorf("bad trace %q", s)
			}
			tr = append(tr, autopipe.TraceEvent{At: at, Kind: trace.RemoveJob})
		default:
			return nil, fmt.Errorf("unknown trace kind %q", parts[0])
		}
	}
	return tr, nil
}

// parseChaos turns repeatable -chaos specs into a fault schedule; nil
// when no specs were given.
func parseChaos(specs []string) (*autopipe.ChaosSpec, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	var out autopipe.ChaosSpec
	for _, s := range specs {
		parts := strings.Split(s, ":")
		switch parts[0] {
		case "kill":
			if len(parts) != 3 {
				return nil, fmt.Errorf("bad chaos %q, want kill:<t>:<worker>", s)
			}
			at, err1 := strconv.ParseFloat(parts[1], 64)
			w, err2 := strconv.Atoi(parts[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("bad chaos %q", s)
			}
			out.Events = append(out.Events, autopipe.ChaosEvent{
				At: at, Kind: autopipe.ChaosKillWorker, Worker: w})
		case "killonflow":
			if len(parts) != 2 || parts[1] == "" {
				return nil, fmt.Errorf("bad chaos %q, want killonflow:<substr>", s)
			}
			out.Events = append(out.Events, autopipe.ChaosEvent{
				Kind: autopipe.ChaosKillWorkerOnFlow, Match: parts[1]})
		case "stall", "drop":
			if len(parts) != 3 || parts[2] == "" {
				return nil, fmt.Errorf("bad chaos %q, want %s:<t>:<substr>", s, parts[0])
			}
			at, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return nil, fmt.Errorf("bad chaos %q", s)
			}
			kind := autopipe.ChaosStallFlows
			if parts[0] == "drop" {
				kind = autopipe.ChaosDropFlows
			}
			out.Events = append(out.Events, autopipe.ChaosEvent{
				At: at, Kind: kind, Match: parts[2]})
		case "flap":
			if len(parts) != 4 {
				return nil, fmt.Errorf("bad chaos %q, want flap:<t>:<gbps>:<holdsec>", s)
			}
			at, err1 := strconv.ParseFloat(parts[1], 64)
			g, err2 := strconv.ParseFloat(parts[2], 64)
			hold, err3 := strconv.ParseFloat(parts[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("bad chaos %q", s)
			}
			out.Events = append(out.Events, autopipe.ChaosEvent{
				At: at, Kind: autopipe.ChaosFlapNIC, Gbps: g, HoldSec: hold})
		default:
			return nil, fmt.Errorf("unknown chaos kind %q", parts[0])
		}
	}
	return &out, nil
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "autopipe-sim:", err)
		os.Exit(1)
	}
}
