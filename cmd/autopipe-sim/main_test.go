package main

import (
	"testing"

	"autopipe"
	"autopipe/internal/trace"
)

func TestParseScheme(t *testing.T) {
	for in, want := range map[string]autopipe.SyncScheme{
		"PS": autopipe.ParameterServer, "ps": autopipe.ParameterServer,
		"Ring": autopipe.RingAllReduce, "ring": autopipe.RingAllReduce,
	} {
		got, err := parseScheme(in)
		if err != nil || got != want {
			t.Fatalf("parseScheme(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseScheme("ipoib"); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}

func TestParseTraces(t *testing.T) {
	tr, err := parseTraces([]string{"bw:2:25", "job:4", "jobend:9"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 3 {
		t.Fatalf("events = %d", len(tr))
	}
	if tr[0].Kind != trace.SetBandwidth || tr[0].At != 2 || tr[0].Value != autopipe.Gbps(25) {
		t.Fatalf("bw event wrong: %+v", tr[0])
	}
	if tr[1].Kind != trace.AddJob || tr[2].Kind != trace.RemoveJob {
		t.Fatal("job events wrong")
	}
	for _, bad := range []string{"bw:2", "bw:x:25", "job:y", "warp:1"} {
		if _, err := parseTraces([]string{bad}); err == nil {
			t.Fatalf("accepted bad trace %q", bad)
		}
	}
}
