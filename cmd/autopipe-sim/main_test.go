package main

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"autopipe"
	"autopipe/internal/server"
	"autopipe/internal/trace"
)

// TestRunReportShape pins the -json output contract: one document
// carrying the result, controller stats, final plan and decisions in
// the same serialisation the autopiped daemon uses.
func TestRunReportShape(t *testing.T) {
	m := autopipe.UniformModel(8, 1e9, 1000)
	res, err := autopipe.RunJob(context.Background(), autopipe.JobConfig{
		Model: m, Cluster: autopipe.Testbed(autopipe.Gbps(25)),
		Workers: autopipe.Workers(4),
	}, 20)
	if err != nil {
		t.Fatal(err)
	}
	rep := server.RunReport{
		Model: m.Name, System: "autopipe", Scheme: "Ring", Workers: 4,
		Result: res.Result, Controller: &res.Controller,
		FinalPlan: &res.FinalPlan, Decisions: res.Decisions,
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"model"`, `"system"`, `"result"`, `"throughput_samples_per_sec"`,
		`"controller"`, `"switches_applied"`, `"final_plan"`, `"in_flight"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("report missing %s:\n%s", key, raw)
		}
	}
	var back server.RunReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Result.Throughput != res.Throughput || !back.FinalPlan.Equal(res.FinalPlan) {
		t.Fatalf("report round trip changed: %+v", back)
	}
}

func TestParseScheme(t *testing.T) {
	for in, want := range map[string]autopipe.SyncScheme{
		"PS": autopipe.ParameterServer, "ps": autopipe.ParameterServer,
		"Ring": autopipe.RingAllReduce, "ring": autopipe.RingAllReduce,
	} {
		got, err := parseScheme(in)
		if err != nil || got != want {
			t.Fatalf("parseScheme(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseScheme("ipoib"); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}

func TestParseTraces(t *testing.T) {
	tr, err := parseTraces([]string{"bw:2:25", "job:4", "jobend:9"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 3 {
		t.Fatalf("events = %d", len(tr))
	}
	if tr[0].Kind != trace.SetBandwidth || tr[0].At != 2 || tr[0].Value != autopipe.Gbps(25) {
		t.Fatalf("bw event wrong: %+v", tr[0])
	}
	if tr[1].Kind != trace.AddJob || tr[2].Kind != trace.RemoveJob {
		t.Fatal("job events wrong")
	}
	for _, bad := range []string{"bw:2", "bw:x:25", "job:y", "warp:1"} {
		if _, err := parseTraces([]string{bad}); err == nil {
			t.Fatalf("accepted bad trace %q", bad)
		}
	}
}
