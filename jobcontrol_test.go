package autopipe

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"autopipe/internal/meta"
	"autopipe/internal/partition"
	"autopipe/internal/profile"
)

func testJobConfig() JobConfig {
	return JobConfig{
		Model:   UniformModel(8, 1e9, 1000),
		Cluster: Testbed(Gbps(25)),
	}
}

func TestNewJobRunMatchesRunJob(t *testing.T) {
	// The managed-job path and the legacy blocking path are the same
	// deterministic simulation.
	a, err := RunJob(context.Background(), testJobConfig(), 30)
	if err != nil {
		t.Fatal(err)
	}
	j, err := NewJob(testJobConfig(), 30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := j.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.WallTime != b.WallTime || a.Batches != b.Batches {
		t.Fatalf("paths diverge: RunJob %+v vs Job.Run %+v", a.Result, b.Result)
	}
}

func TestJobStatusLifecycle(t *testing.T) {
	j, err := NewJob(testJobConfig(), 25)
	if err != nil {
		t.Fatal(err)
	}
	if st := j.Status(); st.State != JobQueued || st.Batches != 25 || len(st.Plan.Stages) == 0 {
		t.Fatalf("pre-run status = %+v", st)
	}
	if _, err := j.Result(); err == nil {
		t.Fatal("Result before Run should error")
	}
	res, err := j.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := j.Status()
	if st.State != JobDone || st.Iteration != 25 {
		t.Fatalf("post-run status = %+v", st)
	}
	if st.Throughput != res.Throughput {
		t.Fatalf("status throughput %g != result %g", st.Throughput, res.Throughput)
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("Done not closed after Run")
	}
	got, err := j.Result()
	if err != nil || got.Batches != 25 {
		t.Fatalf("Result() = %+v, %v", got.Result, err)
	}
	if _, err := j.Run(context.Background()); err == nil {
		t.Fatal("second Run should error")
	}
}

func TestJobCancelBeforeRun(t *testing.T) {
	j, err := NewJob(testJobConfig(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	j.Cancel()
	if _, err := j.Run(context.Background()); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Run after Cancel = %v, want ErrCancelled", err)
	}
	if st := j.Status(); st.State != JobCancelled {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
}

func TestJobCancelMidRun(t *testing.T) {
	// A job too large to finish quickly; cancel it from another
	// goroutine once progress is visible.
	j, err := NewJob(testJobConfig(), 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := j.Run(context.Background())
		errCh <- err
	}()
	deadline := time.Now().Add(30 * time.Second)
	for j.Status().Iteration == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no progress observed")
		}
		time.Sleep(time.Millisecond)
	}
	j.Cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("Run = %v, want ErrCancelled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancel not honoured")
	}
	st := j.Status()
	if st.State != JobCancelled || st.Iteration == 0 {
		t.Fatalf("status after cancel = %+v", st)
	}
}

func TestJobStatusJSON(t *testing.T) {
	j, err := NewJob(testJobConfig(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(j.Status())
	if err != nil {
		t.Fatal(err)
	}
	var back JobStatus
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.State != JobDone || back.Iteration != 20 || !back.Plan.Equal(j.Status().Plan) {
		t.Fatalf("status round trip changed: %+v", back)
	}
}

// slowPredictor makes every candidate evaluation take real wall time,
// so a reconfiguration decision's search dominates the test's clock.
type slowPredictor struct{ delay time.Duration }

func (s slowPredictor) PredictSpeed(p *profile.Profile, plan partition.Plan, miniBatch int, h *meta.History) float64 {
	time.Sleep(s.delay)
	return meta.AnalyticPredictor{}.PredictSpeed(p, plan, miniBatch, h)
}

func TestCancelInterruptsCandidateSearch(t *testing.T) {
	// Regression test for cancellation latency: with a deliberately slow
	// predictor and a large neighbourhood, one full decision takes
	// several real seconds. Cancel must interrupt the search between
	// candidate evaluations — bounded by one candidate's scoring time —
	// rather than wait for the whole decision (or the whole job).
	const delay = 150 * time.Millisecond
	j, err := NewJob(JobConfig{
		Model:      UniformModel(24, 1e9, 1000),
		Cluster:    Testbed(Gbps(25)),
		CheckEvery: 1,
		Predictor:  slowPredictor{delay: delay},
	}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := j.Run(context.Background())
		errCh <- err
	}()
	// By now the first decision's scoring loop is in progress: the
	// simulated batches take microseconds of real time, the candidate
	// scores 150ms each.
	time.Sleep(2 * delay)
	start := time.Now()
	j.Cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("Run = %v, want ErrCancelled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancel not honoured during candidate search")
	}
	// One in-flight candidate evaluation may finish; a whole decision
	// (tens of candidates) must not.
	if waited := time.Since(start); waited > 5*delay {
		t.Fatalf("cancellation took %v, want bounded by one candidate evaluation (%v)", waited, delay)
	}
}
