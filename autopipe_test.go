package autopipe

import (
	"context"
	"testing"
)

func TestFacadeMeasureQuickstart(t *testing.T) {
	m := AlexNet()
	cl := Testbed(Gbps(25))
	plan := PlanPipeDream(m, cl, Workers(10))
	res, err := Measure(RunConfig{
		Model: m, Cluster: cl, Plan: plan,
		Scheme: RingAllReduce, Batches: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 || res.Batches != 15 {
		t.Fatalf("bad result %+v", res)
	}
}

func TestFacadeMeasureDefaultsPlan(t *testing.T) {
	res, err := Measure(RunConfig{
		Model: AlexNet(), Cluster: Testbed(Gbps(25)), Batches: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 8 {
		t.Fatal("default plan run failed")
	}
}

func TestFacadeMeasureValidation(t *testing.T) {
	if _, err := Measure(RunConfig{Cluster: Testbed(Gbps(10)), Batches: 1}); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := Measure(RunConfig{Model: AlexNet(), Cluster: Testbed(Gbps(10))}); err == nil {
		t.Fatal("zero batches accepted")
	}
}

func TestFacadeRunJobWithDynamics(t *testing.T) {
	m := VGG16()
	cl := Testbed(Gbps(100))
	res, err := RunJob(context.Background(), JobConfig{
		Model: m, Cluster: cl, Scheme: RingAllReduce,
		Workers:  Workers(4),
		Dynamics: BandwidthSteps([]float64{2}, []float64{5}),
	}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Controller.Iterations != 40 {
		t.Fatalf("controller iterations = %d", res.Controller.Iterations)
	}
	if len(res.SpeedPerIteration) == 0 {
		t.Fatal("no per-iteration speeds")
	}
	if err := res.FinalPlan.Validate(m.NumLayers(), cl.NumGPUs()); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeJobBeatsFrozenUnderDynamics(t *testing.T) {
	run := func(disable bool) float64 {
		cl := Testbed(Gbps(100))
		res, err := RunJob(context.Background(), JobConfig{
			Model: VGG16(), Cluster: cl, Scheme: RingAllReduce,
			Workers: Workers(4), DisableReconfig: disable,
			Dynamics:   BandwidthSteps([]float64{2}, []float64{5}),
			CheckEvery: 3,
		}, 40)
		if err != nil {
			t.Fatal(err)
		}
		return res.WallTime
	}
	if adaptive, frozen := run(false), run(true); adaptive >= frozen {
		t.Fatalf("managed job (%v) not faster than frozen (%v)", adaptive, frozen)
	}
}

func TestFacadePlanners(t *testing.T) {
	m := ResNet50()
	cl := Testbed(Gbps(25))
	for name, plan := range map[string]Plan{
		"pipedream": PlanPipeDream(m, cl, Workers(10)),
		"optimal":   PlanOptimal(m, cl, Workers(10)),
		"even":      PlanEvenSplit(m, Workers(10)),
		"dp":        PlanDataParallel(m, Workers(10)),
	} {
		if err := plan.Validate(m.NumLayers(), cl.NumGPUs()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestFacadeOptimizePlan(t *testing.T) {
	m := VGG16()
	cl := Testbed(Gbps(10))
	cl.AddCompetingJob()
	start := PlanEvenSplit(m, Workers(4))
	opt, err := OptimizePlan(context.Background(), m, cl, start, ParameterServer)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Validate(m.NumLayers(), cl.NumGPUs()); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeModelZoo(t *testing.T) {
	for _, m := range []*Model{ResNet50(), VGG16(), AlexNet(), BERT48(), UniformModel(4, 1e9, 10)} {
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ModelByName("nope"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestFacadeChurnTrace(t *testing.T) {
	tr := ChurnTrace(1, 100)
	if len(tr) == 0 {
		t.Fatal("empty churn trace")
	}
	tr2 := ChurnTrace(1, 100)
	if len(tr) != len(tr2) {
		t.Fatal("churn trace not deterministic")
	}
}

func TestFacadeCustomCluster(t *testing.T) {
	cl := NewCluster(3, 4, V100, Gbps(40))
	if cl.NumGPUs() != 12 {
		t.Fatalf("GPUs = %d", cl.NumGPUs())
	}
	if cl.GPU(0).Type.Name != "V100" {
		t.Fatal("GPU type not applied")
	}
}

func TestFacadeDiffWorkers(t *testing.T) {
	m := UniformModel(8, 1e9, 10)
	a := PlanEvenSplit(m, Workers(4))
	b := a.Clone()
	b.Stages[0].End = 3
	b.Stages[1].Start = 3
	if d := DiffWorkers(a, b); len(d) != 2 {
		t.Fatalf("DiffWorkers = %v", d)
	}
}

func TestFacadeMeasureSyncSchedule(t *testing.T) {
	m := UniformModel(8, 5e10, 100000)
	for _, sched := range []SyncSchedule{GPipe, DAPPLE, Chimera} {
		res, err := MeasureSyncSchedule(RunConfig{
			Model: m, Cluster: Testbed(Gbps(25)),
			Plan:   PlanEvenSplit(m, Workers(4)),
			Scheme: RingAllReduce, Batches: 4,
		}, sched, 4)
		if err != nil {
			t.Fatalf("%v: %v", sched, err)
		}
		if res.Batches != 4 || res.Throughput <= 0 {
			t.Fatalf("%v: bad result %+v", sched, res)
		}
	}
	if _, err := MeasureSyncSchedule(RunConfig{Cluster: Testbed(Gbps(10)), Batches: 1}, GPipe, 4); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestFacadeSelectWorkers(t *testing.T) {
	m := VGG16()
	cl := Testbed(Gbps(1))
	plan, k := SelectWorkers(m, cl, Workers(10))
	if err := plan.Validate(m.NumLayers(), cl.NumGPUs()); err != nil {
		t.Fatal(err)
	}
	if k < 1 || k > 10 {
		t.Fatalf("selected %d workers", k)
	}
}

func TestFacadeHybridPredictorJob(t *testing.T) {
	net := func() *MetaNetwork {
		// Untrained network blended at low weight: behaviour must stay
		// sane (the analytic component dominates).
		return newTestMetaNetwork()
	}()
	res, err := RunJob(context.Background(), JobConfig{
		Model: AlexNet(), Cluster: Testbed(Gbps(25)),
		Workers: Workers(4), Scheme: RingAllReduce,
		Predictor: NewHybridPredictor(net, 0.2, RingAllReduce),
		SyncEvery: 2,
	}, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 15 {
		t.Fatalf("batches = %d", res.Batches)
	}
}
