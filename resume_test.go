package autopipe

import (
	"context"
	"encoding/json"
	"testing"
)

// resumeConfig builds a fresh config for every run: jobs own their
// cluster, so a resume must never share the mutated instance.
func resumeConfig() JobConfig {
	return JobConfig{
		Model:      VGG16(),
		Cluster:    Testbed(Gbps(100)),
		Workers:    Workers(4),
		CheckEvery: 3,
		Dynamics:   BandwidthSteps([]float64{1}, []float64{5}),
	}
}

// TestJobCheckpointCadence: checkpoints arrive on the configured
// period, never at the final iteration, and the last one is retained on
// the job.
func TestJobCheckpointCadence(t *testing.T) {
	cfg := resumeConfig()
	cfg.CheckpointEvery = 10
	var seen []int
	cfg.OnCheckpoint = func(cp Checkpoint) { seen = append(seen, cp.Iterations) }
	j, err := NewJob(cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("no checkpoints taken")
	}
	for _, it := range seen {
		if it%10 != 0 || it >= 40 || it == 0 {
			t.Fatalf("checkpoint at iteration %d off the cadence", it)
		}
	}
	last, ok := j.Checkpoint()
	if !ok || last.Iterations != seen[len(seen)-1] {
		t.Fatalf("Job.Checkpoint() = %+v, %v; want iteration %d", last, ok, seen[len(seen)-1])
	}
	if err := last.Plan.Validate(cfg.Model.NumLayers(), cfg.Cluster.NumGPUs()); err != nil {
		t.Fatalf("checkpointed plan invalid: %v", err)
	}
}

// TestJobResumeDeterministicFromCheckpoint is the PR's acceptance
// contract at the public API: resume the job twice from the same
// checkpoint and require bit-identical decision streams, final plans
// and totals — an uninterrupted run from that checkpoint IS one of the
// two resumes, so equality proves the resumed controller tracks it
// exactly.
func TestJobResumeDeterministicFromCheckpoint(t *testing.T) {
	const total = 40
	cfg := resumeConfig()
	cfg.CheckpointEvery = 10
	var cp *Checkpoint
	cfg.OnCheckpoint = func(c Checkpoint) {
		if cp == nil && c.Iterations >= 20 {
			cp = &c
		}
	}
	j, err := NewJob(cfg, total)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint at or after iteration 20")
	}

	resume := func() (JobResult, JobStatus) {
		r, err := NewJobFromCheckpoint(resumeConfig(), total, *cp)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res, r.Status()
	}
	resA, stA := resume()
	resB, stB := resume()

	if resA.Batches != total || stA.Iteration != total {
		t.Fatalf("resumed run totals wrong: batches %d, iteration %d, want %d", resA.Batches, stA.Iteration, total)
	}
	if resA.Samples != total*cfg.Model.MiniBatch {
		t.Fatalf("resumed samples = %d", resA.Samples)
	}
	da, _ := json.Marshal(resA.Decisions)
	db, _ := json.Marshal(resB.Decisions)
	if string(da) != string(db) {
		t.Fatalf("resumed decision streams diverge:\n%s\nvs\n%s", da, db)
	}
	if !resA.FinalPlan.Equal(resB.FinalPlan) {
		t.Fatalf("resumed final plans diverge: %s vs %s", resA.FinalPlan, resB.FinalPlan)
	}
	if stA.Controller.Iterations != total || stB.Controller.Iterations != total {
		t.Fatalf("controller iterations %d/%d, want %d", stA.Controller.Iterations, stB.Controller.Iterations, total)
	}
	// The resumed controller's counters continue from the checkpoint.
	if resA.Controller.Decisions < cp.Stats.Decisions {
		t.Fatalf("decision counter reset across resume: %d < %d", resA.Controller.Decisions, cp.Stats.Decisions)
	}
}

func TestNewJobFromCheckpointValidation(t *testing.T) {
	cfg := resumeConfig()
	cfg.CheckpointEvery = 5
	var cp *Checkpoint
	cfg.OnCheckpoint = func(c Checkpoint) {
		if cp == nil {
			cp = &c
		}
	}
	j, err := NewJob(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint")
	}
	// A budget the checkpoint already exhausted leaves nothing to run.
	if _, err := NewJobFromCheckpoint(resumeConfig(), cp.Iterations, *cp); err == nil {
		t.Fatal("checkpoint at budget accepted")
	}
	// A checkpoint from a different model must be refused, not crash.
	bad := resumeConfig()
	bad.Model = AlexNet()
	if _, err := NewJobFromCheckpoint(bad, 40, *cp); err == nil {
		t.Fatal("cross-model checkpoint accepted")
	}
}
