module autopipe

go 1.22
