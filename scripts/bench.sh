#!/usr/bin/env bash
# Runs the predictor / search / inference-kernel benchmarks with
# -benchmem and records the results as one JSON document (default
# BENCH_predictor.json) so the perf trajectory is tracked from PR 3
# onward, plus the bandwidth-estimator benchmark as BENCH_bwe.json. The
# PredictSpeed benchmarks fan out with -cpu to show the realised
# parallel scoring speedup; the OptimizePlan benchmarks carry their own
# internal procs=1/4/8 sub-benchmarks.
#
# Usage: scripts/bench.sh [output.json]
# Env:   BENCHTIME (default 100x), CPUS (default 1,4,8)
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_predictor.json}
benchtime=${BENCHTIME:-100x}
cpus=${CPUS:-1,4,8}
tmp=$(mktemp)
bindir=$(mktemp -d)
trap 'rm -f "$tmp"; rm -rf "$bindir"' EXIT

# to_json renders `go test -bench` output on stdin as one JSON document.
# An optional first argument becomes a "note" field.
to_json() {
  awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v note="${1:-}" '
BEGIN {
  printf "{\n  \"generated\": \"%s\",\n", date
  if (note != "") printf "  \"note\": \"%s\",\n", note
  printf "  \"benchmarks\": [\n"
}
/^Benchmark/ {
  ns = ""; bop = ""; aop = ""
  for (i = 3; i < NF; i++) {
    if ($(i+1) == "ns/op")     ns  = $i
    if ($(i+1) == "B/op")      bop = $i
    if ($(i+1) == "allocs/op") aop = $i
  }
  line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", $1, $2)
  if (ns  != "") line = line sprintf(", \"ns_per_op\": %s", ns)
  if (bop != "") line = line sprintf(", \"bytes_per_op\": %s", bop)
  if (aop != "") line = line sprintf(", \"allocs_per_op\": %s", aop)
  line = line "}"
  if (n++) printf ",\n"
  printf "%s", line
}
END { print "\n  ]\n}" }
'
}

go test -run '^$' -bench '^BenchmarkPredictSpeed$' \
  -benchmem -benchtime "$benchtime" -cpu "$cpus" . | tee "$tmp"
go test -run '^$' -bench '^BenchmarkOptimizePlan(Hybrid)?$' \
  -benchmem -benchtime "$benchtime" . | tee -a "$tmp"
go test -run '^$' -bench '^BenchmarkInfer$' \
  -benchmem -benchtime "$benchtime" ./internal/nn | tee -a "$tmp"
to_json < "$tmp" > "$out"
echo "wrote $out"

go test -run '^$' -bench '^BenchmarkEstimatorObserve$' \
  -benchmem -benchtime "${BENCHTIME:-10000x}" ./internal/bwe | tee "$tmp.bwe"
to_json < "$tmp.bwe" > BENCH_bwe.json
rm -f "$tmp.bwe"
echo "wrote BENCH_bwe.json"

# Optimizer hot path: batched + incremental candidate scoring
# (BENCH_optimizer.json). The OptimizePlan benchmarks run WITHOUT -cpu —
# their procs=1/4/8 sub-benchmarks vary opts.Procs internally, and
# pinning GOMAXPROCS would invalidate them.
go test -run '^$' -bench '^BenchmarkOptimizePlan(Hybrid)?$' \
  -benchmem -benchtime "${BENCHTIME:-300x}" . | tee "$tmp.opt"
go test -run '^$' -bench '^BenchmarkInferBatch$' \
  -benchmem -benchtime "${BENCHTIME:-300x}" ./internal/nn | tee -a "$tmp.opt"
to_json "nproc=$(nproc); at GOMAXPROCS=1 the procs sub-benchmarks measure scheduling overhead, not parallel speedup — compare against BENCH_predictor.json's OptimizePlan rows" \
  < "$tmp.opt" > BENCH_optimizer.json
rm -f "$tmp.opt"
echo "wrote BENCH_optimizer.json"

# Daemon soak (BENCH_daemon.json): the load harness drives a
# 1000-concurrent-job closed loop against one real spawned autopiped,
# once on the default journal path (group commit) and once with
# -journal-serial-fsync (every append pays its own fsync — the
# pre-group-commit behaviour). The headline before/after numbers are
# result.admission_latency.p99_ms and result.syncs_per_append. The
# group-commit run also SIGKILLs the daemon afterwards and gates on
# journal-replay recovery time.
# Env: SOAK_DURATION (default 15s).
soak=${SOAK_DURATION:-15s}
go build -o "$bindir/autopiped" ./cmd/autopiped
go build -o "$bindir/autopipe-load" ./cmd/autopipe-load
soak_common=(-spawn 1 -autopiped "$bindir/autopiped" -mode closed \
  -concurrency 1000 -pool 8 -max-queue 512 -duration "$soak" \
  -slo-retry-after-range -slo-max-error-rate 0.01)
"$bindir/autopipe-load" "${soak_common[@]}" \
  -measure-recovery -slo-max-recovery-sec 30 \
  -json "$bindir/gc.json" | tail -n 6
"$bindir/autopipe-load" "${soak_common[@]}" -journal-serial-fsync \
  -json "$bindir/serial.json" | tail -n 4
{
  printf '{\n  "generated": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "note": "1000-concurrent-job closed-loop soak against one spawned autopiped (pool 8, queue 512, %s): group_commit is the default journal path, serial_fsync disables coalescing. Compare result.admission_latency.p99_ms and result.syncs_per_append.",\n' "$soak"
  printf '  "group_commit": %s,\n' "$(cat "$bindir/gc.json")"
  printf '  "serial_fsync": %s\n}\n' "$(cat "$bindir/serial.json")"
} > BENCH_daemon.json
echo "wrote BENCH_daemon.json"

# Fleet partition soak (BENCH_fleet.json): a 3-node fleet under
# open-loop Poisson load, with a scripted symmetric partition isolating
# one node mid-run — netfault block rules are installed and healed over
# each daemon's POST /v1/netfault control surface (inbound HTTP is never
# impaired, which is what makes the scripted heal possible). Headline
# numbers: result.partition_recovery_sec (heal-to-quorum on the isolated
# node), result.jobs_fenced_out_total / result.fence_rejections_total
# (stale-owner state discarded or refused at heal), and
# result.shed_503 (minority-gateway sheds, each carrying a derived
# Retry-After). Residual errors are the brief forwarding window before
# the survivors declare the isolated owner dead.
# Env: FLEET_DURATION (default 25s), PARTITION_AT (5s), PARTITION_FOR (10s).
"$bindir/autopipe-load" -spawn 3 -autopiped "$bindir/autopiped" \
  -mode open -rate 150 -concurrency 64 -duration "${FLEET_DURATION:-25s}" \
  -pool 4 -max-queue 256 -heartbeat-every 100ms \
  -partition-at "${PARTITION_AT:-5s}" -partition-for "${PARTITION_FOR:-10s}" \
  -slo-max-partition-recovery-sec 30 -slo-retry-after-range \
  -slo-max-error-rate 0.05 \
  -json BENCH_fleet.json | tail -n 8
echo "wrote BENCH_fleet.json"
