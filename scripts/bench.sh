#!/usr/bin/env bash
# Runs the predictor / search / inference-kernel benchmarks with
# -benchmem and records the results as one JSON document (default
# BENCH_predictor.json) so the perf trajectory is tracked from PR 3
# onward, plus the bandwidth-estimator benchmark as BENCH_bwe.json. The
# PredictSpeed benchmarks fan out with -cpu to show the realised
# parallel scoring speedup; the OptimizePlan benchmarks carry their own
# internal procs=1/4/8 sub-benchmarks.
#
# Usage: scripts/bench.sh [output.json]
# Env:   BENCHTIME (default 100x), CPUS (default 1,4,8)
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_predictor.json}
benchtime=${BENCHTIME:-100x}
cpus=${CPUS:-1,4,8}
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# to_json renders `go test -bench` output on stdin as one JSON document.
# An optional first argument becomes a "note" field.
to_json() {
  awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v note="${1:-}" '
BEGIN {
  printf "{\n  \"generated\": \"%s\",\n", date
  if (note != "") printf "  \"note\": \"%s\",\n", note
  printf "  \"benchmarks\": [\n"
}
/^Benchmark/ {
  ns = ""; bop = ""; aop = ""
  for (i = 3; i < NF; i++) {
    if ($(i+1) == "ns/op")     ns  = $i
    if ($(i+1) == "B/op")      bop = $i
    if ($(i+1) == "allocs/op") aop = $i
  }
  line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", $1, $2)
  if (ns  != "") line = line sprintf(", \"ns_per_op\": %s", ns)
  if (bop != "") line = line sprintf(", \"bytes_per_op\": %s", bop)
  if (aop != "") line = line sprintf(", \"allocs_per_op\": %s", aop)
  line = line "}"
  if (n++) printf ",\n"
  printf "%s", line
}
END { print "\n  ]\n}" }
'
}

go test -run '^$' -bench '^BenchmarkPredictSpeed$' \
  -benchmem -benchtime "$benchtime" -cpu "$cpus" . | tee "$tmp"
go test -run '^$' -bench '^BenchmarkOptimizePlan(Hybrid)?$' \
  -benchmem -benchtime "$benchtime" . | tee -a "$tmp"
go test -run '^$' -bench '^BenchmarkInfer$' \
  -benchmem -benchtime "$benchtime" ./internal/nn | tee -a "$tmp"
to_json < "$tmp" > "$out"
echo "wrote $out"

go test -run '^$' -bench '^BenchmarkEstimatorObserve$' \
  -benchmem -benchtime "${BENCHTIME:-10000x}" ./internal/bwe | tee "$tmp.bwe"
to_json < "$tmp.bwe" > BENCH_bwe.json
rm -f "$tmp.bwe"
echo "wrote BENCH_bwe.json"

# Optimizer hot path: batched + incremental candidate scoring
# (BENCH_optimizer.json). The OptimizePlan benchmarks run WITHOUT -cpu —
# their procs=1/4/8 sub-benchmarks vary opts.Procs internally, and
# pinning GOMAXPROCS would invalidate them.
go test -run '^$' -bench '^BenchmarkOptimizePlan(Hybrid)?$' \
  -benchmem -benchtime "${BENCHTIME:-300x}" . | tee "$tmp.opt"
go test -run '^$' -bench '^BenchmarkInferBatch$' \
  -benchmem -benchtime "${BENCHTIME:-300x}" ./internal/nn | tee -a "$tmp.opt"
to_json "nproc=$(nproc); at GOMAXPROCS=1 the procs sub-benchmarks measure scheduling overhead, not parallel speedup — compare against BENCH_predictor.json's OptimizePlan rows" \
  < "$tmp.opt" > BENCH_optimizer.json
rm -f "$tmp.opt"
echo "wrote BENCH_optimizer.json"
