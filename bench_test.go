package autopipe

// Benchmarks regenerating every table and figure of the paper's
// evaluation, one benchmark per figure, plus micro-benchmarks of the
// planner, predictor, arbiter and simulation substrates. Run with:
//
//	go test -bench=. -benchmem
//
// The reported ns/op of a BenchmarkFigureN is the cost of regenerating
// that figure's full data from the simulator.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	ap "autopipe/internal/autopipe"

	"autopipe/internal/cluster"
	"autopipe/internal/experiments"
	"autopipe/internal/meta"
	"autopipe/internal/model"
	"autopipe/internal/netsim"
	"autopipe/internal/partition"
	"autopipe/internal/pipeline"
	"autopipe/internal/profile"
	"autopipe/internal/rl"
	"autopipe/internal/sim"
)

// ---- Figures ----

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure2()
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure3()
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure4()
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure5()
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure6()
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure8(20)
	}
}

func BenchmarkFigure8PanelResNet50PSTF(b *testing.B) {
	cell := experiments.Figure8Cell{
		Model: model.ResNet50(), Scheme: netsim.ParameterServer, Framework: pipeline.TensorFlow,
	}
	for i := 0; i < b.N; i++ {
		experiments.Figure8Panel(cell, 20)
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure9()
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure10()
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure11(30, 11)
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure12()
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure13()
	}
}

// ---- Table 1: the profiler itself ----

func BenchmarkTable1Profiler(b *testing.B) {
	cl := cluster.Testbed(cluster.Gbps(25))
	pr := profile.NewProfiler(model.ResNet50(), cl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.Observe()
	}
}

// ---- Component micro-benchmarks (the paper's Fig. 12 in isolation) ----

func BenchmarkPipeDreamDP(b *testing.B) {
	cl := cluster.Testbed(cluster.Gbps(25))
	m := model.ResNet50()
	for i := 0; i < b.N; i++ {
		cm := partition.NewPipeDreamCost(m, cl, 0, cluster.Gbps(25))
		partition.PipeDream(cm, Workers(10))
	}
}

func BenchmarkAnalyticPredictor(b *testing.B) {
	cl := cluster.Testbed(cluster.Gbps(25))
	m := model.ResNet50()
	prof := profile.NewProfiler(m, cl).Observe()
	plan := PlanPipeDream(m, cl, Workers(10))
	pred := meta.AnalyticPredictor{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred.PredictSpeed(prof, plan, m.MiniBatch, nil)
	}
}

func BenchmarkMetaNetworkPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := meta.NewNetwork(rng)
	cl := cluster.Testbed(cluster.Gbps(25))
	m := model.ResNet50()
	prof := profile.NewProfiler(m, cl).Observe()
	plan := PlanPipeDream(m, cl, Workers(10))
	h := &meta.History{}
	h.Push(meta.EncodeDynamicStep(prof, 0.5))
	f := meta.BuildFeatures(prof, plan, m.MiniBatch, h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Predict(f)
	}
}

func BenchmarkRLArbiterDecide(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	arb := rl.NewArbiter(rng)
	cl := cluster.Testbed(cluster.Gbps(25))
	m := model.ResNet50()
	prof := profile.NewProfiler(m, cl).Observe()
	plan := PlanPipeDream(m, cl, Workers(10))
	cand := partition.Neighbors(plan)
	if len(cand) == 0 {
		cand = partition.InFlightVariants(plan, 0)
	}
	x := rl.Encode(rl.State{
		Profile: prof, MiniBatch: m.MiniBatch,
		Current: plan, Candidate: cand[0],
		PredCurrent: 100, PredCandidate: 110, SwitchCost: 1,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arb.Decide(x)
	}
}

func BenchmarkNeighborEnumeration(b *testing.B) {
	cl := cluster.Testbed(cluster.Gbps(25))
	m := model.BERT48() // 98 layers: the O(L²) worst case
	plan := PlanEvenSplit(m, Workers(10))
	_ = cl
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.NeighborsWithMerge(plan)
	}
}

// ---- Substrate micro-benchmarks ----

func BenchmarkSimEngineEvents(b *testing.B) {
	eng := sim.NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(1, "bench", func() {})
		eng.Step()
	}
}

func BenchmarkNetsimFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		cl := cluster.Testbed(cluster.Gbps(25))
		net := netsim.New(eng, cl)
		for f := 0; f < 8; f++ {
			net.StartFlow(f%10, (f+3)%10, 1e8, "bench", nil)
		}
		eng.RunAll()
	}
}

func BenchmarkPipelineResNet50Iteration(b *testing.B) {
	m := model.ResNet50()
	cl := cluster.Testbed(cluster.Gbps(25))
	plan := PlanPipeDream(m, cl, Workers(10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pipeline.MeasureAsync(pipeline.Config{
			Model: m, Cluster: cl, Plan: plan, Scheme: netsim.RingAllReduce,
		}, 10)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

func BenchmarkFineGrainedSwitch(b *testing.B) {
	m := model.VGG16()
	for i := 0; i < b.N; i++ {
		cl := cluster.Testbed(cluster.Gbps(25))
		eng := sim.NewEngine()
		net := netsim.New(eng, cl)
		plan := partition.EvenSplit(m.NumLayers(), Workers(4))
		e, err := pipeline.NewAsync(eng, net, pipeline.Config{
			Model: m, Cluster: cl, Plan: plan, Scheme: netsim.RingAllReduce,
		})
		if err != nil {
			b.Fatal(err)
		}
		e.Start(10)
		np := plan.Clone()
		np.Stages[0].End++
		np.Stages[1].Start++
		if err := e.ApplyPlan(np, pipeline.SwitchFineGrained, nil); err != nil {
			b.Fatal(err)
		}
		eng.RunAll()
	}
}

// ---- Extension studies ----

func BenchmarkAblationSwitchMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationSwitchMode()
	}
}

func BenchmarkAblationPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationPolicy()
	}
}

func BenchmarkAblationCheckEvery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationCheckEvery()
	}
}

func BenchmarkMultiJob(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunMultiJob(model.ResNet50(), model.VGG16(), 10, true, true, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemoryAccounting(b *testing.B) {
	m := model.VGG16()
	cl := cluster.Testbed(cluster.Gbps(25))
	plan := partition.EvenSplit(m.NumLayers(), Workers(4))
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		net := netsim.New(eng, cl)
		e, err := pipeline.NewAsync(eng, net, pipeline.Config{
			Model: m, Cluster: cl, Plan: plan, Scheme: netsim.RingAllReduce, SyncEvery: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		e.Start(10)
		eng.RunAll()
		_ = e.MaxPeakMemoryBytes()
	}
}

func BenchmarkHeteroStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.HeteroTable(12)
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.SchedulerChurnTable(20, []int64{1})
	}
}

func BenchmarkRackStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RackTable(10)
	}
}

func BenchmarkHierarchicalDP(b *testing.B) {
	cl := cluster.NewCluster(cluster.Config{
		Servers: 4, GPUsPerServer: 2, GPUType: cluster.P100,
		NICBwBps: cluster.Gbps(40), Racks: 2, RackUplinkBps: cluster.Gbps(10),
	})
	m := model.ResNet50()
	cm := partition.NewPipeDreamCost(m, cl, 0, cluster.Gbps(40))
	racks := [][]int{{0, 1, 4, 5}, {2, 3, 6, 7}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.PipeDreamHierarchical(cm, racks, cluster.Gbps(10))
	}
}

// ---- Concurrent evaluation core ----

// BenchmarkOptimizePlan measures the parallel hill-climb at several
// worker counts. The chosen plan is bit-identical across sub-benchmarks
// (asserted here); only wall-clock should differ. On a multi-core
// runner procs=8 is expected to beat procs=1 by the candidate-scoring
// parallelism; on a single-core machine they tie.
func BenchmarkOptimizePlan(b *testing.B) {
	cl := cluster.Testbed(cluster.Gbps(25))
	cl.AddCompetingJob()
	m := model.BERT48()
	pr := profile.NewProfiler(m, cl)
	_ = pr.SetSmoothing(1)
	prof := pr.Observe()
	workers := make([]int, 10)
	for i := range workers {
		workers[i] = i
	}
	start := partition.EvenSplit(m.NumLayers(), workers)
	var serialPlan partition.Plan
	for _, procs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			var last partition.Plan
			for i := 0; i < b.N; i++ {
				p, err := ap.OptimizePlan(context.Background(), prof, start, m.MiniBatch,
					meta.AnalyticPredictor{}, ap.OptimizeOptions{MaxRounds: 8, UseMerge: true, Procs: procs})
				if err != nil {
					b.Fatal(err)
				}
				last = p
			}
			if procs == 1 {
				serialPlan = last
			} else if !last.Equal(serialPlan) {
				b.Fatalf("procs=%d chose %s, serial chose %s", procs, last, serialPlan)
			}
		})
	}
}

// BenchmarkPredictSpeed scores one candidate partition through each
// predictor on the allocation-free inference path. Run with -cpu 1,4,8:
// RunParallel fans the calls across GOMAXPROCS goroutines, so the net
// and hybrid sub-benchmarks double as proof that meta-network scoring
// now parallelises (it used to degrade to serial — the LSTM kept
// per-call state). All three must report 0 allocs/op in steady state.
func BenchmarkPredictSpeed(b *testing.B) {
	cl := cluster.Testbed(cluster.Gbps(25))
	cl.AddCompetingJob()
	m := model.ResNet50()
	prof := profile.NewProfiler(m, cl).Observe()
	plan := PlanPipeDream(m, cl, Workers(10))
	h := &meta.History{}
	h.Push(meta.EncodeDynamicStep(prof, 0.5))
	net := meta.NewNetwork(rand.New(rand.NewSource(1)))
	preds := []struct {
		name string
		pred meta.Predictor
	}{
		{"analytic", meta.AnalyticPredictor{}},
		{"net", meta.NetPredictor{Net: net}},
		{"hybrid", &meta.HybridPredictor{Net: net, NetWeight: 0.3}},
	}
	for _, c := range preds {
		b.Run(c.name, func(b *testing.B) {
			c.pred.PredictSpeed(prof, plan, m.MiniBatch, h) // warm the pools
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					c.pred.PredictSpeed(prof, plan, m.MiniBatch, h)
				}
			})
		})
	}
}

// BenchmarkOptimizePlanHybrid is BenchmarkOptimizePlan on the learned
// (hybrid) predictor — the paper's headline path. Before the inference
// split the LSTM forced serial scoring here regardless of procs; now
// procs=8 should realise a multiple of procs=1 while the chosen plan
// stays bit-identical across proc counts (asserted).
func BenchmarkOptimizePlanHybrid(b *testing.B) {
	cl := cluster.Testbed(cluster.Gbps(25))
	cl.AddCompetingJob()
	m := model.BERT48()
	pr := profile.NewProfiler(m, cl)
	_ = pr.SetSmoothing(1)
	prof := pr.Observe()
	net := meta.NewNetwork(rand.New(rand.NewSource(2)))
	pred := &meta.HybridPredictor{Net: net, NetWeight: 0.5, Scheme: netsim.RingAllReduce}
	h := &meta.History{}
	h.Push(meta.EncodeDynamicStep(prof, 0.5))
	workers := make([]int, 10)
	for i := range workers {
		workers[i] = i
	}
	start := partition.EvenSplit(m.NumLayers(), workers)
	var serialPlan partition.Plan
	for _, procs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			var last partition.Plan
			for i := 0; i < b.N; i++ {
				p, err := ap.OptimizePlan(context.Background(), prof, start, m.MiniBatch,
					pred, ap.OptimizeOptions{MaxRounds: 8, UseMerge: true, Procs: procs, History: h})
				if err != nil {
					b.Fatal(err)
				}
				last = p
			}
			if procs == 1 {
				serialPlan = last
			} else if !last.Equal(serialPlan) {
				b.Fatalf("procs=%d chose %s, serial chose %s", procs, last, serialPlan)
			}
		})
	}
}

// BenchmarkGenerate measures parallel ground-truth dataset generation
// at several worker counts; the dataset is bit-identical across
// sub-benchmarks by construction (per-sample derived seeds).
func BenchmarkGenerate(b *testing.B) {
	for _, procs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := meta.Generate(context.Background(), meta.DatasetConfig{
					Seed: 3, N: 16, Batches: 3, Procs: procs,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
