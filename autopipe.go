// Package autopipe is the public API of the AutoPipe reproduction: a
// discrete-event simulation of pipeline-parallel DNN training in a
// shared GPU cluster, plus the AutoPipe controller — reinforcement-
// learning-gated, meta-network-scored dynamic work repartitioning with
// fine-grained state switching (Hu, Liu, Wang, Wang: "AutoPipe:
// Automatic Configuration of Pipeline Parallelism in Shared GPU
// Cluster", ICPP 2024).
//
// Quick start:
//
//	m := autopipe.ResNet50()
//	cl := autopipe.Testbed(autopipe.Gbps(25))
//	plan := autopipe.PlanPipeDream(m, cl, autopipe.Workers(10))
//	res, err := autopipe.Measure(autopipe.RunConfig{
//		Model: m, Cluster: cl, Plan: plan, Batches: 50,
//	})
//
// For a managed job that adapts to resource changes, see NewJob.
package autopipe

import (
	"autopipe/internal/autopipe"
	"autopipe/internal/chaos"
	"autopipe/internal/cluster"
	"autopipe/internal/meta"
	"autopipe/internal/model"
	"autopipe/internal/netsim"
	"autopipe/internal/partition"
	"autopipe/internal/pipeline"
	"autopipe/internal/profile"
	"autopipe/internal/rl"
	"autopipe/internal/trace"
)

// Re-exported core types. These aliases make the internal packages'
// documented types part of the public surface.
type (
	// Model is a DNN workload expressed as per-layer cost profiles.
	Model = model.Model
	// Cluster is the shared GPU cluster resource model.
	Cluster = cluster.Cluster
	// Plan is a pipeline work partition (stages × workers + in-flight).
	Plan = partition.Plan
	// Stage is one pipeline stage of a Plan.
	Stage = partition.Stage
	// Result summarises a bounded training run.
	Result = pipeline.Result
	// Trace is a schedule of resource-change events.
	Trace = trace.Trace
	// TraceEvent is one resource change.
	TraceEvent = trace.Event
	// SyncScheme selects PS or Ring-All-reduce parameter sync.
	SyncScheme = netsim.SyncScheme
	// Framework models the host ML framework's efficiency.
	Framework = pipeline.Framework
	// GPUType describes an accelerator model.
	GPUType = cluster.GPUType
	// ControllerStats aggregates AutoPipe controller activity.
	ControllerStats = autopipe.Stats
	// DecisionRecord is one recorded reconfiguration decision.
	DecisionRecord = autopipe.DecisionRecord
	// ChaosSpec is a deterministic fault-injection schedule.
	ChaosSpec = chaos.Spec
	// ChaosEvent is one scheduled fault.
	ChaosEvent = chaos.Event
)

// Chaos fault kinds.
const (
	ChaosKillWorker       = chaos.KillWorker
	ChaosKillWorkerOnFlow = chaos.KillWorkerOnFlow
	ChaosStallFlows       = chaos.StallFlows
	ChaosDropFlows        = chaos.DropFlows
	ChaosFlapNIC          = chaos.FlapNIC
	ChaosKillDaemon       = chaos.KillDaemon
	ChaosPartition        = chaos.Partition
)

// Synchronisation schemes.
const (
	ParameterServer = netsim.ParameterServer
	RingAllReduce   = netsim.RingAllReduce
)

// Framework presets.
var (
	TensorFlow = pipeline.TensorFlow
	MXNet      = pipeline.MXNet
	PyTorch    = pipeline.PyTorch
)

// GPU presets.
var (
	P100 = cluster.P100
	V100 = cluster.V100
	A100 = cluster.A100
)

// Gbps converts gigabits/second to the bits/second the API expects.
func Gbps(g float64) float64 { return cluster.Gbps(g) }

// Model zoo: the paper's workloads.
func ResNet50() *Model { return model.ResNet50() }

// VGG16 returns the VGG-16 profile (mini-batch 64).
func VGG16() *Model { return model.VGG16() }

// AlexNet returns the AlexNet profile (mini-batch 256).
func AlexNet() *Model { return model.AlexNet() }

// BERT48 returns the 48-layer BERT profile (mini-batch 256).
func BERT48() *Model { return model.BERT48() }

// GoogLeNet returns the Inception-v1 profile (mini-batch 128).
func GoogLeNet() *Model { return model.GoogLeNet() }

// ModelByName resolves "ResNet50", "VGG16", "AlexNet" or "BERT48".
func ModelByName(name string) (*Model, error) { return model.ByName(name) }

// UniformModel returns a synthetic model with n identical layers — handy
// for experiments and tests.
func UniformModel(n int, flopsPerLayer float64, activationElems int64) *Model {
	return model.Uniform(n, flopsPerLayer, activationElems)
}

// Testbed returns the paper's cluster: 5 servers × 2 P100 GPUs behind a
// single switch at the given NIC speed (use Gbps).
func Testbed(nicBwBps float64) *Cluster { return cluster.Testbed(nicBwBps) }

// NewCluster builds a custom homogeneous cluster.
func NewCluster(servers, gpusPerServer int, gpu GPUType, nicBwBps float64) *Cluster {
	return cluster.NewCluster(cluster.Config{
		Servers: servers, GPUsPerServer: gpusPerServer,
		GPUType: gpu, NICBwBps: nicBwBps,
	})
}

// Workers returns worker ids 0..n-1.
func Workers(n int) []int {
	ws := make([]int, n)
	for i := range ws {
		ws[i] = i
	}
	return ws
}

// PlanPipeDream runs PipeDream's DP partitioner (exclusive-GPU profile,
// nominal bandwidth — the paper's baseline planner).
func PlanPipeDream(m *Model, cl *Cluster, workers []int) Plan {
	cm := partition.NewPipeDreamCost(m, cl, workers[0], seedBandwidth(m, cl))
	return partition.PipeDream(cm, workers)
}

// seedBandwidth is the planning bandwidth before any measurement exists:
// the nominal NIC line rate, via the profiler's static view (the single
// source every planner seeds from).
func seedBandwidth(m *Model, cl *Cluster) float64 {
	return profile.NewProfiler(m, cl).StaticProfile().SeedBandwidthBps()
}

// PlanOptimal re-runs the partitioner against the cluster's *current*
// contended state (the motivation experiments' oracle).
func PlanOptimal(m *Model, cl *Cluster, workers []int) Plan {
	cm := partition.NewRefinedCost(m, cl, workers)
	return partition.PipeDream(cm, workers)
}

// SelectWorkers searches worker-subset sizes with the DP planner and
// returns the best plan and the number of workers it uses — on slow
// fabrics fewer workers can out-train the full pool.
func SelectWorkers(m *Model, cl *Cluster, workers []int) (Plan, int) {
	cm := partition.NewPipeDreamCost(m, cl, workers[0], seedBandwidth(m, cl))
	return partition.SelectWorkers(cm, workers)
}

// PlanEvenSplit splits layers evenly, one worker per stage.
func PlanEvenSplit(m *Model, workers []int) Plan {
	return partition.EvenSplit(m.NumLayers(), workers)
}

// PlanDataParallel replicates the whole model on every worker (the
// vanilla-framework baseline).
func PlanDataParallel(m *Model, workers []int) Plan {
	return partition.SingleStage(m.NumLayers(), workers)
}

// BandwidthSteps builds a trace that sets every NIC to gbps[i] at
// times[i] seconds (virtual time).
func BandwidthSteps(times, gbps []float64) Trace {
	return trace.BandwidthSteps(times, gbps)
}

// JobArrivals builds a trace adding one competing job per time.
func JobArrivals(times []float64) Trace { return trace.JobArrivals(times) }

// Predictor and component re-exports for advanced composition.
type (
	// Predictor scores candidate plans (meta-network or analytic).
	Predictor = meta.Predictor
	// MetaNetwork is the LSTM+FC speed predictor of paper Fig. 7.
	MetaNetwork = meta.Network
	// Arbiter is the RL switching policy of paper §4.3.
	Arbiter = rl.Arbiter
)

// NewHybridPredictor blends a (possibly offline-trained) meta-network
// with the scheme-aware analytic model; netWeight ∈ [0,1] is the
// network's share and grows during online adaptation.
func NewHybridPredictor(net *MetaNetwork, netWeight float64, scheme SyncScheme) Predictor {
	return &meta.HybridPredictor{Net: net, NetWeight: netWeight, Scheme: scheme}
}
