package autopipe

import (
	"math/rand"

	"autopipe/internal/meta"
)

// newTestMetaNetwork builds an untrained meta-network for facade tests.
func newTestMetaNetwork() *MetaNetwork {
	return meta.NewNetwork(rand.New(rand.NewSource(1)))
}
